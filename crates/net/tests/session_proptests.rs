//! Chaos property tests for the session layer: arbitrary seeded fault
//! schedules (severs, truncations, duplicate deliveries, read delays)
//! crossed with arbitrary pump interleavings over 8 connections × 16
//! streams must always converge the shared `SegmentStore` snapshot
//! byte-identical to a fault-free run — and never panic. Recovery is
//! entirely the session machine's: every dead link is redialed
//! automatically and rebound by token; there is no operator-style
//! re-attach anywhere.
//!
//! The regression tests at the bottom are the checked-in seed corpus:
//! fault structures that pin specific recovery paths (first-dial sever,
//! mid-stream truncate + duplicate, a storm on every connection at
//! once) so a future refactor cannot silently lose them.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pla_core::Segment;
use pla_ingest::{SegmentStore, StoreSnapshot};
use pla_net::listen::MemoryAcceptor;
use pla_net::testutil::{Fault, FaultPlan, FaultRedial};
use pla_net::{Collector, ConnId, NetConfig, SessionConfig, SessionSender};
use pla_transport::wire::FixedCodec;

const CONNS: usize = 8;
const STREAMS_PER_CONN: u64 = 16;
const LINK_CAPACITY: usize = 127;
/// Frame-index horizon for seeded plans: comfortably inside one
/// connection's traffic (Hello + per-stream data and fins).
const FAULT_HORIZON: u64 = 24;

fn net_config() -> NetConfig {
    NetConfig { window: 4096, max_frame: 1 << 20 }
}

/// Session timing tuned for the synthetic millisecond clock the runs
/// advance: redials land within a few turns, liveness lapses stay out
/// of the way of healthy links.
fn session_config() -> SessionConfig {
    SessionConfig {
        heartbeat_interval: Duration::from_millis(50),
        liveness_timeout: Duration::from_millis(250),
        handshake_timeout: Duration::from_millis(100),
        session_ttl: Duration::from_secs(600),
        redial_initial: Duration::from_millis(2),
        redial_cap: Duration::from_millis(16),
        ..SessionConfig::default()
    }
}

/// Per-stream segment logs: monotone times, arbitrary values.
fn logs_strategy() -> impl Strategy<Value = Vec<Vec<Segment>>> {
    let seg_count = 1usize..4;
    let values = prop::collection::vec(-50.0f64..50.0, 2 * 4);
    (prop::collection::vec(seg_count, CONNS * STREAMS_PER_CONN as usize), values).prop_map(
        |(counts, values)| {
            counts
                .iter()
                .enumerate()
                .map(|(s, &n)| {
                    (0..n)
                        .map(|i| {
                            let t = i as f64 * 10.0;
                            let v = values[(s + i) % values.len()];
                            Segment {
                                t_start: t,
                                x_start: [v].into(),
                                t_end: t + 5.0,
                                x_end: [v + 1.0].into(),
                                connected: false,
                                n_points: 2,
                                new_recordings: 2,
                            }
                        })
                        .collect()
                })
                .collect()
        },
    )
}

/// Turns one seed per connection into that connection's fault-plan
/// queue: seed 0 = healthy, anything else = two seeded storms (first
/// and second link) before the redial queue runs dry and goes clean —
/// so every schedule converges.
fn plans_from_seeds(seeds: &[u64]) -> Vec<Vec<FaultPlan>> {
    seeds
        .iter()
        .map(|&seed| {
            if seed == 0 {
                vec![FaultPlan::none()]
            } else {
                vec![
                    FaultPlan::seeded(seed, FAULT_HORIZON),
                    FaultPlan::seeded(seed ^ 0xA5A5_A5A5, FAULT_HORIZON),
                ]
            }
        })
        .collect()
}

/// Runs the full session-mode fan-in under a pump interleaving and
/// per-connection fault-plan queues, returning the store snapshot.
/// Every recovery in here is automatic: a faulted link dies, the
/// session machine backs off, redials, presents its token, and resumes
/// from the collector's cursors.
fn run_chaos(
    logs: &[Vec<Segment>],
    schedule: &[usize],
    plans: Vec<Vec<FaultPlan>>,
) -> StoreSnapshot {
    let cfg = net_config();
    let sess_cfg = session_config();
    let store = Arc::new(SegmentStore::new());
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut collector =
        Collector::with_sessions(FixedCodec, 1, cfg, sess_cfg, acceptor, store.clone());

    let epoch = Instant::now();
    let mut edges: Vec<SessionSender<FixedCodec, FaultRedial>> = plans
        .into_iter()
        .enumerate()
        .map(|(c, queue)| {
            let redial = FaultRedial::new(connector.clone(), LINK_CAPACITY, queue);
            let mut sess = SessionSender::new(FixedCodec, 1, cfg, sess_cfg, redial, epoch);
            for s in 0..STREAMS_PER_CONN {
                let stream = c as u64 * STREAMS_PER_CONN + s;
                for seg in &logs[stream as usize] {
                    sess.mux_mut().try_send_segment(stream, seg).expect("roomy window");
                }
                sess.mux_mut().finish_stream(stream).expect("fin");
            }
            sess
        })
        .collect();

    // Every edge dials (and stages its Hello) before the collector's
    // first round, so ConnId assignment follows edge order whatever the
    // schedule says — snapshots stay comparable across runs.
    for edge in &mut edges {
        edge.pump_at(epoch);
    }

    let mut now = epoch;
    let mut schedule = schedule.iter().cycle();
    let mut turn = 0usize;
    loop {
        now += Duration::from_millis(1);
        // Unlike the passive senders of `collector_proptests`, session
        // machines have deadlines — a starved edge misses its own
        // handshake timeout and redials as a stranger. So every edge is
        // guaranteed its round-robin pump each cycle, and the schedule
        // layers *extra* pumps on top: the noise is ordering and double
        // pumping, never starvation.
        let rr = turn % CONNS;
        let extra = *schedule.next().expect("cycled") % CONNS;
        let mut moved = edges[rr].pump_at(now);
        if extra != rr {
            moved += edges[extra].pump_at(now);
        }
        for c in [rr, extra] {
            assert!(
                edges[c].failure().is_none(),
                "the fault vocabulary must never terminally fail a session: {:?}",
                edges[c].failure()
            );
        }
        moved += collector.pump_at(now).expect("no fault schedule may violate the protocol");
        let _ = moved;
        let done = edges.iter().all(|e| e.mux().is_idle())
            && (1..=CONNS as u64).all(|id| collector.conn_complete(ConnId(id)));
        if done {
            break;
        }
        turn += 1;
        assert!(turn < 50_000, "chaos run failed to converge");
    }
    store.snapshot()
}

/// Snapshot convergence: per-stream logs byte-identical, and the
/// per-source accounting identical up to relabeling. `ConnId` is an
/// arrival-order label — under chaos, redial timing permutes which edge
/// gets which id, and that permutation is scheduling noise, not state.
fn assert_converged(got: &StoreSnapshot, reference: &StoreSnapshot) {
    assert_eq!(got.streams, reference.streams, "per-stream logs must be byte-identical");
    assert_eq!(got.total_segments, reference.total_segments);
    assert_eq!(got.sources.len(), reference.sources.len(), "chaos must not mint extra sources");
    let watermarks = |snap: &StoreSnapshot| {
        let mut w: Vec<(u64, u64)> =
            snap.sources.values().map(|w| (w.segments, w.covered_through.to_bits())).collect();
        w.sort_unstable();
        w
    };
    assert_eq!(watermarks(got), watermarks(reference), "source watermarks must match as a set");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pure interleaving noise, no faults: any pump schedule produces
    /// the exact snapshot of canonical round-robin.
    #[test]
    fn interleavings_alone_do_not_change_the_snapshot(
        logs in logs_strategy(),
        schedule in prop::collection::vec(0usize..CONNS, 1..64),
    ) {
        let reference = run_chaos(&logs, &[0, 1, 2, 3, 4, 5, 6, 7], plans_from_seeds(&[0; CONNS]));
        let got = run_chaos(&logs, &schedule, plans_from_seeds(&[0; CONNS]));
        assert_converged(&got, &reference);
    }

    /// Interleaving noise *crossed with* seeded fault storms on every
    /// connection: severs, truncations, duplicate deliveries, and read
    /// delays at arbitrary frame indices. The snapshot must still match
    /// the fault-free run exactly — replay trimmed by resume cursors,
    /// duplicates dropped by sequence dedup, truncated links redialed.
    #[test]
    fn fault_storms_converge_to_the_fault_free_snapshot(
        logs in logs_strategy(),
        schedule in prop::collection::vec(0usize..CONNS, 1..64),
        seeds in prop::collection::vec(0u64..1_000_000, CONNS),
    ) {
        let reference = run_chaos(&logs, &[0, 1, 2, 3, 4, 5, 6, 7], plans_from_seeds(&[0; CONNS]));
        let got = run_chaos(&logs, &schedule, plans_from_seeds(&seeds));
        assert_converged(&got, &reference);
    }
}

/// A small fixed workload for the regression corpus.
fn corpus_logs() -> Vec<Vec<Segment>> {
    (0..CONNS * STREAMS_PER_CONN as usize)
        .map(|s| {
            (0..1 + s % 3)
                .map(|i| {
                    let t = i as f64 * 10.0;
                    let v = (s % 7) as f64 - 3.0;
                    Segment {
                        t_start: t,
                        x_start: [v].into(),
                        t_end: t + 5.0,
                        x_end: [v + 1.0].into(),
                        connected: false,
                        n_points: 2,
                        new_recordings: 2,
                    }
                })
                .collect()
        })
        .collect()
}

fn corpus_reference(logs: &[Vec<Segment>]) -> StoreSnapshot {
    run_chaos(logs, &[0, 1, 2, 3, 4, 5, 6, 7], plans_from_seeds(&[0; CONNS]))
}

/// Regression: the very first dial's `Hello` never arrives (sever at
/// frame 0) — the session must back off, redial, and converge.
#[test]
fn regression_hello_severed_on_first_dial() {
    let logs = corpus_logs();
    let mut plans = plans_from_seeds(&[0; CONNS]);
    for queue in &mut plans {
        *queue = vec![FaultPlan::new(vec![Fault::Sever { frame: 0 }])];
    }
    let got = run_chaos(&logs, &[3, 1, 4, 1, 5, 0, 2, 6], plans);
    assert_converged(&got, &corpus_reference(&logs));
}

/// Regression: duplicate delivery plus a mid-stream truncation on the
/// same connection — dedup absorbs the duplicate, the truncation tears
/// the link down mid-frame, and the token resume replays the tail.
#[test]
fn regression_duplicate_then_midstream_truncate() {
    let logs = corpus_logs();
    let mut plans = plans_from_seeds(&[0; CONNS]);
    plans[2] = vec![FaultPlan::new(vec![
        Fault::Duplicate { frame: 1 },
        Fault::Truncate { frame: 6, keep: 7 },
    ])];
    plans[5] = vec![FaultPlan::new(vec![Fault::Delay { read_call: 2, rounds: 3 }])];
    let got = run_chaos(&logs, &[0, 1, 2, 3, 4, 5, 6, 7], plans);
    assert_converged(&got, &corpus_reference(&logs));
}

/// Regression: seeded storms on every connection at once — the seeds
/// that once drove this suite's development, kept verbatim.
#[test]
fn regression_seed_corpus_storms_every_connection() {
    let logs = corpus_logs();
    for seeds in [
        [42u64, 1337, 271_828, 314_159, 577_215, 141_421, 662_607, 602_214],
        [7u64, 7, 7, 7, 7, 7, 7, 7],
        [999_983u64, 2, 65_537, 4_294_967, 12_345, 54_321, 31_337, 161_803],
    ] {
        let got = run_chaos(&logs, &[1, 0, 3, 2, 5, 4, 7, 6], plans_from_seeds(&seeds));
        assert_converged(&got, &corpus_reference(&logs));
    }
}
