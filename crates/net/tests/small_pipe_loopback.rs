//! Regression: session-mode fan-in over **raw** small-capacity memory
//! pipes, where `try_write` routinely accepts only part of a frame.
//!
//! The fault-injection suites wrap links in `FaultLink`, whose
//! `try_write` buffers unboundedly and never returns a partial count —
//! so they never exercise the torn-frame paths this test pins:
//!
//! - `MuxSender::apply_resume` re-trims the staged replay when the
//!   `HelloAck` arrives, on the *live* link; it must preserve the
//!   unwritten tail of a frame whose prefix already entered the wire.
//! - `SessionSender::pump_at` must not write a session frame (e.g. a
//!   heartbeat) while the mux outbox holds a torn frame.
//!
//! Either violation desyncs the collector's frame decoder mid-stream;
//! before the fix this failed on round two with
//! `Protocol("segment runs backwards")`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pla_core::filters::{FilterKind, FilterSpec};
use pla_core::{Segment, Signal};
use pla_ingest::{IngestConfig, IngestEngine, SegmentStore, StreamId};
use pla_net::listen::MemoryAcceptor;
use pla_net::uplink::{EngineUplink, UplinkStatus};
use pla_net::{Collector, ConnId, MemoryRedial, NetConfig, SessionConfig, SessionSender};
use pla_signal::{random_walk, WalkParams};
use pla_transport::wire::FixedCodec;
use pla_transport::{Receiver, Transmitter};

const CONNS: u64 = 8;
const STREAMS_PER_CONN: u64 = 16;
const SAMPLES: usize = 300;
/// Small enough that the 0-RTT burst is torn mid-frame on every link.
const LINK_CAPACITY: usize = 211;
const TICK: Duration = Duration::from_millis(5);

fn spec_for(id: u64) -> FilterSpec {
    let kind = match id % 3 {
        0 => FilterKind::Swing,
        1 => FilterKind::Slide,
        _ => FilterKind::Cache,
    };
    FilterSpec::new(kind, &[0.5])
}

fn signal_for(id: u64) -> Signal {
    random_walk(WalkParams {
        n: SAMPLES,
        p_decrease: 0.5,
        max_delta: 1.5,
        seed: 0x7EAD ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    })
}

fn direct_reference() -> BTreeMap<u64, Vec<Segment>> {
    let mut out = BTreeMap::new();
    for id in 0..CONNS * STREAMS_PER_CONN {
        let filter = spec_for(id).build().expect("valid spec");
        let mut tx = Transmitter::new(filter, FixedCodec);
        let mut rx = Receiver::new(FixedCodec, 1);
        for (t, x) in signal_for(id).iter() {
            tx.push(t, x).expect("valid sample");
            rx.consume(tx.take_bytes()).expect("lossless link");
        }
        tx.finish().expect("flush");
        rx.consume(tx.take_bytes()).expect("lossless link");
        out.insert(id, rx.into_segments());
    }
    out
}

fn session_config() -> SessionConfig {
    SessionConfig {
        heartbeat_interval: Duration::from_millis(50),
        liveness_timeout: Duration::from_millis(250),
        handshake_timeout: Duration::from_millis(100),
        session_ttl: Duration::from_secs(600),
        redial_initial: Duration::from_millis(5),
        redial_cap: Duration::from_millis(40),
        ..SessionConfig::default()
    }
}

struct Edge {
    sess: SessionSender<FixedCodec, MemoryRedial>,
    uplink: EngineUplink,
    finned: bool,
}

impl Edge {
    fn new(
        conn: u64,
        cfg: NetConfig,
        sess_cfg: SessionConfig,
        redial: MemoryRedial,
        epoch: Instant,
    ) -> Self {
        let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
            shards: 2,
            queue_depth: 128,
            shard_log: false,
        });
        let handle = engine.handle();
        let base = conn * STREAMS_PER_CONN;
        for s in 0..STREAMS_PER_CONN {
            let id = base + s;
            handle.register(StreamId(id), spec_for(id)).expect("register");
            let signal = signal_for(id);
            let samples: Vec<(f64, &[f64])> = signal.iter().collect();
            handle.push_batch(StreamId(id), &samples).expect("feed");
        }
        let report = engine.finish();
        assert_eq!(report.quarantined(), 0);
        Self {
            sess: SessionSender::new(FixedCodec, 1, cfg, sess_cfg, redial, epoch),
            uplink: EngineUplink::new(tap),
            finned: false,
        }
    }

    fn round(&mut self, now: Instant) -> usize {
        let status = self.uplink.pump(self.sess.mux_mut()).expect("uplink");
        if status == UplinkStatus::Drained && !self.finned {
            self.sess.mux_mut().finish_all();
            self.finned = true;
        }
        if let Some(failure) = self.sess.failure() {
            panic!("session must not fail in a fault-free run: {failure}");
        }
        self.sess.pump_at(now)
    }

    fn done(&self) -> bool {
        self.finned && self.sess.mux().is_idle()
    }
}

#[test]
fn partial_writes_never_tear_frames() {
    let reference = direct_reference();
    let cfg = NetConfig { window: 512, max_frame: 1 << 20 };
    let sess_cfg = session_config();
    let store = Arc::new(SegmentStore::new());
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut collector =
        Collector::with_sessions(FixedCodec, 1, cfg, sess_cfg, acceptor, store.clone());

    let epoch = Instant::now();
    let mut edges: Vec<Edge> = (0..CONNS)
        .map(|c| {
            Edge::new(c, cfg, sess_cfg, MemoryRedial::new(connector.clone(), LINK_CAPACITY), epoch)
        })
        .collect();

    // Dial before the first collector round so accept order follows
    // edge order.
    let mut now = epoch;
    for edge in &mut edges {
        edge.round(now);
    }

    let mut stalled = 0;
    loop {
        now += TICK;
        let mut moved = collector.pump_at(now).expect("fault-free run");
        for edge in &mut edges {
            moved += edge.round(now);
        }
        if edges.iter().all(|e| e.done()) && (1..=CONNS).all(|c| collector.conn_complete(ConnId(c)))
        {
            break;
        }
        stalled = if moved == 0 { stalled + 1 } else { 0 };
        assert!(stalled < 256, "fan-in deadlocked");
    }

    let snap = store.snapshot();
    assert_eq!(snap.streams.len(), (CONNS * STREAMS_PER_CONN) as usize);
    for (id, want) in &reference {
        assert_eq!(
            snap.streams[&StreamId(*id)].to_vec(),
            *want,
            "stream {id} must survive torn partial writes byte-identically"
        );
    }
}
