//! Overhead of the metrics layer: ns per counter/histogram increment
//! (the paths that run adjacent to the filter hot path) and ns per
//! full exposition render at 1k series.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pla_ops::Registry;

fn bench_ops_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops_overhead");

    let mut reg = Registry::new();
    let counter = reg.counter("pla_bench_total", "Bench counter.");
    let gauge = reg.gauge("pla_bench_gauge", "Bench gauge.");
    let histogram =
        reg.histogram("pla_bench_hist", "Bench histogram.", &[1.0, 10.0, 100.0, 1000.0]);

    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            black_box(&counter);
        })
    });
    group.bench_function("gauge_set", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v += 0.5;
            gauge.set(black_box(v));
        })
    });
    group.bench_function("histogram_observe", |b| {
        let mut v = 0.0f64;
        b.iter(|| {
            v = (v + 7.3) % 2000.0;
            histogram.observe(black_box(v));
        })
    });

    // 1k series: 10 counter families x 50 labeled series, 10 gauge
    // families x 45, 5 histogram families x 10 (6 exposition lines each).
    let mut big = Registry::new();
    for f in 0..10 {
        let cname = format!("pla_bench_fanout_{f}_total");
        let gname = format!("pla_bench_level_{f}");
        for s in 0..50 {
            big.counter_with(&cname, "Fanout counter.", &[("series", &s.to_string())]).add(s);
        }
        for s in 0..45 {
            big.gauge_with(&gname, "Fanout gauge.", &[("series", &s.to_string())]).set(s as f64);
        }
    }
    for f in 0..5 {
        let hname = format!("pla_bench_lat_{f}");
        for s in 0..10 {
            let h = big.histogram_with(
                &hname,
                "Fanout histogram.",
                &[0.5, 1.0, 5.0],
                &[("series", &s.to_string())],
            );
            h.observe(s as f64);
        }
    }
    group.throughput(Throughput::Elements(1000));
    group.bench_function("render_1k_series", |b| b.iter(|| black_box(big.render().len())));

    group.finish();
}

criterion_group!(benches, bench_ops_overhead);
criterion_main!(benches);
