//! The collector admin surface: `/metrics`, `/healthz`, and the JSON
//! admin API, as one [`Handler`] wrapping a shared [`Collector`].
//!
//! | Method | Path | Effect |
//! |---|---|---|
//! | GET | `/metrics` | Prometheus exposition of every registered series |
//! | GET | `/healthz` | liveness probe, `200 ok` |
//! | GET | `/admin/connections` | per-connection counters as JSON |
//! | GET | `/admin/streams` | streams + quarantine state + per-source watermarks |
//! | POST | `/admin/drain/{conn}` | detach a connection (session resumes later) |
//! | POST | `/admin/quarantine/{stream}` | shed that stream at the publish seam |
//! | POST | `/admin/release/{stream}` | lift a stream quarantine |

use std::cell::RefCell;
use std::rc::Rc;

use pla_net::listen::Acceptor;
use pla_net::{Collector, ConnId};
use pla_transport::wire::Codec;

use crate::collect::{collector_families, store_families};
use crate::http::{Handler, Request, Response};
use crate::metrics::{render_families, Collect, MetricFamily, Registry};

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite, which JSON
/// cannot represent).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The admin [`Handler`]: owns the ops [`Registry`] (HTTP self-metrics
/// live here), scrapes the wrapped collector and its store on every
/// `/metrics`, and maps the admin POSTs onto the collector's
/// drain/quarantine machinery.
pub struct CollectorAdmin<C: Codec + Clone, A: Acceptor> {
    collector: Rc<RefCell<Collector<C, A>>>,
    registry: Registry,
    extra: Vec<Box<dyn Collect>>,
    requests: crate::metrics::Counter,
    response_bytes: crate::metrics::Histogram,
}

impl<C: Codec + Clone, A: Acceptor> CollectorAdmin<C, A> {
    /// Wraps `collector` (shared with the tasks pumping it — the same
    /// `Rc<RefCell<..>>` handed to
    /// [`drive_collector`](pla_net::drive_collector)).
    pub fn new(collector: Rc<RefCell<Collector<C, A>>>) -> Self {
        let mut registry = Registry::new();
        let requests =
            registry.counter("pla_ops_requests_total", "HTTP requests served by the ops endpoint.");
        let response_bytes = registry.histogram(
            "pla_ops_response_bytes",
            "Response body sizes served by the ops endpoint.",
            &[256.0, 1024.0, 4096.0, 16384.0, 65536.0],
        );
        Self { collector, registry, extra: Vec::new(), requests, response_bytes }
    }

    /// Adds a scrape source consulted on every `/metrics` (ingest
    /// reports, sender session stats, query counters, ...).
    pub fn add_source(&mut self, source: impl Collect + 'static) {
        self.extra.push(Box::new(source));
    }

    /// The ops-owned registry, for registering more primitives.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    fn metrics(&self) -> Response {
        let mut fams: Vec<MetricFamily> = self.registry.gather();
        {
            let coll = self.collector.borrow();
            collector_families(&coll.stats(), &mut fams);
            store_families(&coll.store().snapshot(), &mut fams);
        }
        for source in &self.extra {
            source.collect(&mut fams);
        }
        Response::exposition(render_families(&fams))
    }

    fn connections_json(&self) -> Response {
        let coll = self.collector.borrow();
        let stats = coll.stats();
        let conns: Vec<String> = stats
            .conns
            .iter()
            .map(|c| {
                let acks: Vec<String> =
                    c.ack_points.iter().map(|(s, seq)| format!("[{s},{seq}]")).collect();
                format!(
                    "{{\"conn\":{},\"attached\":{},\"resumes\":{},\"published\":{},\
                     \"backpressure\":{},\"bytes_moved\":{},\"frames\":{},\"dup_drops\":{},\
                     \"heartbeats\":{},\"failed\":{},\"ack_points\":[{}]}}",
                    c.conn.0,
                    c.attached,
                    c.resumes,
                    c.published,
                    c.backpressure,
                    c.bytes_moved,
                    c.receiver.frames_applied,
                    c.receiver.dup_drops,
                    c.receiver.heartbeats,
                    match &c.failed {
                        Some(e) => format!("\"{}\"", json_escape(&e.to_string())),
                        None => "null".to_string(),
                    },
                    acks.join(",")
                )
            })
            .collect();
        Response::json(
            200,
            format!(
                "{{\"connections\":[{}],\"refused\":{},\"evicted\":{},\"last_refusal\":{}}}",
                conns.join(","),
                stats.refused,
                stats.evicted,
                match &stats.last_refusal {
                    Some(r) => format!("\"{}\"", json_escape(r)),
                    None => "null".to_string(),
                }
            ),
        )
    }

    fn streams_json(&self) -> Response {
        let coll = self.collector.borrow();
        let snap = coll.store().snapshot();
        let streams: Vec<String> = snap
            .streams
            .iter()
            .map(|(id, view)| {
                let span = match view.span() {
                    Some((lo, hi)) => format!("[{},{}]", json_f64(lo), json_f64(hi)),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"stream\":{},\"segments\":{},\"quarantined\":{},\"span\":{}}}",
                    id.0,
                    view.len(),
                    coll.stream_quarantined(id.0),
                    span
                )
            })
            .collect();
        let sources: Vec<String> = snap
            .sources
            .iter()
            .map(|(src, w)| {
                format!(
                    "{{\"source\":{},\"segments\":{},\"covered_through\":{}}}",
                    src,
                    w.segments,
                    json_f64(w.covered_through)
                )
            })
            .collect();
        let quarantined: Vec<String> =
            coll.quarantined_streams().iter().map(u64::to_string).collect();
        Response::json(
            200,
            format!(
                "{{\"streams\":[{}],\"sources\":[{}],\"quarantined\":[{}],\"total_segments\":{}}}",
                streams.join(","),
                sources.join(","),
                quarantined.join(","),
                snap.total_segments
            ),
        )
    }

    fn post(&mut self, action: &str, id_str: &str) -> Response {
        let Ok(id) = id_str.parse::<u64>() else {
            return Response::json(
                400,
                format!("{{\"error\":\"bad id {}\"}}", json_escape(id_str)),
            );
        };
        let mut coll = self.collector.borrow_mut();
        let (ok, verb) = match action {
            "drain" => (coll.drain(ConnId(id)), "drained"),
            "quarantine" => (coll.quarantine_stream(id), "quarantined"),
            "release" => (coll.release_stream(id), "released"),
            _ => return Response::not_found(),
        };
        if ok {
            Response::json(200, format!("{{\"{verb}\":{id}}}"))
        } else {
            Response::json(409, format!("{{\"error\":\"{verb} refused for {id}\"}}"))
        }
    }
}

impl<C: Codec + Clone, A: Acceptor> Handler for CollectorAdmin<C, A> {
    fn handle(&mut self, req: &Request) -> Response {
        self.requests.inc();
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/metrics") => self.metrics(),
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/admin/connections") => self.connections_json(),
            ("GET", "/admin/streams") => self.streams_json(),
            (method, path) => {
                match path.strip_prefix("/admin/").and_then(|rest| rest.split_once('/')) {
                    Some((action, id)) if method == "POST" => self.post(action, id),
                    Some(_) => Response::method_not_allowed(),
                    None => Response::not_found(),
                }
            }
        };
        self.response_bytes.observe(resp.body.len() as f64);
        resp
    }
}
