//! Adapters scraping the pipeline's existing stats structs into
//! [`MetricFamily`] samples.
//!
//! Each `*_families` function is a pure snapshot-to-samples mapping; wire
//! one up live by registering a closure with
//! [`Registry::collect_fn`](crate::metrics::Registry::collect_fn) (or the
//! extra-source hook on [`CollectorAdmin`](crate::admin::CollectorAdmin))
//! that re-scrapes on every render.
//!
//! The metric names below are part of the repo's **wire contract** —
//! renaming one breaks every dashboard keyed on it. Convention:
//! `pla_<subsystem>_<name>{labels}`, counters suffixed `_total`.

use pla_ingest::{IngestReport, StoreSnapshot};
use pla_net::session::SessionStats;
use pla_net::CollectorStats;
use pla_query::{LookupStats, QueryServerStats};

use crate::metrics::{MetricFamily, MetricKind, Sample, SampleValue};

fn family(name: &str, help: &str, kind: MetricKind, samples: Vec<Sample>) -> MetricFamily {
    MetricFamily { name: name.to_string(), help: help.to_string(), kind, samples }
}

fn plain(value: SampleValue) -> Vec<Sample> {
    vec![Sample { labels: Vec::new(), value }]
}

fn counter(name: &str, help: &str, v: u64) -> MetricFamily {
    family(name, help, MetricKind::Counter, plain(SampleValue::Counter(v)))
}

fn gauge(name: &str, help: &str, v: f64) -> MetricFamily {
    family(name, help, MetricKind::Gauge, plain(SampleValue::Gauge(v)))
}

fn labeled(label: &str, id: String, value: SampleValue) -> Sample {
    Sample { labels: vec![(label.to_string(), id)], value }
}

/// Scrapes a [`CollectorStats`] snapshot: aggregate collector and session
/// counters plus per-connection series labeled `conn="<id>"`.
pub fn collector_families(stats: &CollectorStats, out: &mut Vec<MetricFamily>) {
    out.push(gauge(
        "pla_collector_connections",
        "Connections accepted and still tracked.",
        stats.connections as f64,
    ));
    out.push(gauge(
        "pla_collector_attached",
        "Connections currently holding a live link.",
        stats.attached as f64,
    ));
    out.push(counter(
        "pla_collector_frames_total",
        "Data frames applied across all connections.",
        stats.frames,
    ));
    out.push(counter(
        "pla_collector_dup_drops_total",
        "Duplicate frames dropped (replays after reconnect).",
        stats.dup_drops,
    ));
    out.push(counter(
        "pla_collector_segments_total",
        "Segments published to the shared store.",
        stats.segments,
    ));
    out.push(counter(
        "pla_collector_backpressure_total",
        "Pump rounds that could not fully flush staged control bytes.",
        stats.backpressure,
    ));
    out.push(gauge(
        "pla_collector_failed",
        "Connections quarantined by a protocol violation.",
        stats.failed as f64,
    ));
    out.push(counter(
        "pla_collector_refused_total",
        "Handshakes refused (version mismatch, garbage, unknown token, timeout).",
        stats.refused,
    ));
    out.push(counter(
        "pla_collector_evicted_total",
        "Detached sessions evicted after their TTL lapsed.",
        stats.evicted,
    ));
    out.push(counter(
        "pla_collector_shed_segments_total",
        "Segments shed by per-stream quarantine instead of published.",
        stats.shed_segments,
    ));
    out.push(gauge(
        "pla_collector_quarantined_streams",
        "Streams currently under admin quarantine.",
        stats.quarantined_streams.len() as f64,
    ));
    out.push(counter(
        "pla_session_heartbeats_echoed_total",
        "Heartbeat frames received (and echoed) across all connections.",
        stats.heartbeats,
    ));
    out.push(counter(
        "pla_session_resumes_total",
        "Link resumes (token resumes plus explicit reattaches).",
        stats.resumes,
    ));
    if let Some(reason) = &stats.last_refusal {
        out.push(family(
            "pla_collector_last_refusal_info",
            "Most recent handshake refusal; the reason rides the label.",
            MetricKind::Gauge,
            vec![labeled("reason", reason.clone(), SampleValue::Gauge(1.0))],
        ));
    }

    let conn_series = |pick: fn(&pla_net::ConnStats) -> SampleValue| -> Vec<Sample> {
        stats.conns.iter().map(|c| labeled("conn", c.conn.0.to_string(), pick(c))).collect()
    };
    out.push(family(
        "pla_conn_published_total",
        "Segments published to the store, per connection.",
        MetricKind::Counter,
        conn_series(|c| SampleValue::Counter(c.published)),
    ));
    out.push(family(
        "pla_conn_bytes_moved_total",
        "Bytes moved over the link (read + written), per connection.",
        MetricKind::Counter,
        conn_series(|c| SampleValue::Counter(c.bytes_moved)),
    ));
    out.push(family(
        "pla_conn_frames_total",
        "Data frames applied, per connection.",
        MetricKind::Counter,
        conn_series(|c| SampleValue::Counter(c.receiver.frames_applied)),
    ));
    out.push(family(
        "pla_conn_resumes_total",
        "Link resumes, per connection.",
        MetricKind::Counter,
        conn_series(|c| SampleValue::Counter(c.resumes)),
    ));
    out.push(family(
        "pla_conn_attached",
        "Whether the connection currently holds a live link.",
        MetricKind::Gauge,
        conn_series(|c| SampleValue::Gauge(if c.attached { 1.0 } else { 0.0 })),
    ));
}

/// Scrapes an [`IngestReport`]: per-shard series labeled `shard="<i>"`.
/// When several engines feed one registry, element-wise-sum their
/// [`ShardStats`](pla_ingest::ShardStats) first and call
/// [`ingest_shard_families`] — per-shard labels must stay unique.
pub fn ingest_families(report: &IngestReport, out: &mut Vec<MetricFamily>) {
    ingest_shard_families(&report.shards, report.quarantined(), out);
}

/// [`ingest_families`] over bare per-shard stats plus a quarantined-
/// stream count (the form aggregated multi-engine callers use).
pub fn ingest_shard_families(
    shards: &[pla_ingest::ShardStats],
    quarantined: usize,
    out: &mut Vec<MetricFamily>,
) {
    let shard_series = |pick: fn(&pla_ingest::ShardStats) -> SampleValue| -> Vec<Sample> {
        shards.iter().enumerate().map(|(i, s)| labeled("shard", i.to_string(), pick(s))).collect()
    };
    out.push(family(
        "pla_ingest_ops_total",
        "Queue operations processed, per shard.",
        MetricKind::Counter,
        shard_series(|s| SampleValue::Counter(s.ops)),
    ));
    out.push(family(
        "pla_ingest_samples_total",
        "Samples pushed through filters, per shard.",
        MetricKind::Counter,
        shard_series(|s| SampleValue::Counter(s.samples)),
    ));
    out.push(family(
        "pla_ingest_segments_total",
        "Segments emitted, per shard.",
        MetricKind::Counter,
        shard_series(|s| SampleValue::Counter(s.segments)),
    ));
    out.push(family(
        "pla_ingest_backpressure_total",
        "try_push rejections due to a full shard queue, per shard.",
        MetricKind::Counter,
        shard_series(|s| SampleValue::Counter(s.backpressure)),
    ));
    out.push(family(
        "pla_ingest_unknown_stream_drops_total",
        "Samples dropped for unregistered streams, per shard.",
        MetricKind::Counter,
        shard_series(|s| SampleValue::Counter(s.unknown_stream_drops)),
    ));
    out.push(family(
        "pla_ingest_streams",
        "Streams registered, per shard.",
        MetricKind::Gauge,
        shard_series(|s| SampleValue::Gauge(s.streams as f64)),
    ));
    out.push(gauge(
        "pla_ingest_quarantined_streams",
        "Streams quarantined by a filter error.",
        quarantined as f64,
    ));
}

/// Scrapes a [`StoreSnapshot`]: totals, per-shard epochs
/// (`shard="<i>"`), and per-source watermarks (`source="<id>"`).
pub fn store_families(snap: &StoreSnapshot, out: &mut Vec<MetricFamily>) {
    out.push(gauge(
        "pla_store_streams",
        "Streams present in the store.",
        snap.streams.len() as f64,
    ));
    out.push(counter(
        "pla_store_segments_total",
        "Segments appended to the store.",
        snap.total_segments,
    ));
    out.push(family(
        "pla_store_shard_epoch",
        "Append epoch per store shard (cache-validation cursor).",
        MetricKind::Counter,
        snap.epochs
            .iter()
            .enumerate()
            .map(|(i, e)| labeled("shard", i.to_string(), SampleValue::Counter(*e)))
            .collect(),
    ));
    out.push(family(
        "pla_store_source_segments_total",
        "Segments appended per source connection (watermark).",
        MetricKind::Counter,
        snap.sources
            .iter()
            .map(|(src, w)| labeled("source", src.to_string(), SampleValue::Counter(w.segments)))
            .collect(),
    ));
    out.push(family(
        "pla_store_source_covered_through",
        "Latest segment end-time published per source connection.",
        MetricKind::Gauge,
        snap.sources
            .iter()
            .map(|(src, w)| {
                labeled("source", src.to_string(), SampleValue::Gauge(w.covered_through))
            })
            .collect(),
    ));
}

/// Scrapes a sender-side [`SessionStats`], labeled `sender="<id>"` so
/// several uplinks coexist in one registry.
pub fn session_families(sender: &str, stats: &SessionStats, out: &mut Vec<MetricFamily>) {
    let one = |value: SampleValue| vec![labeled("sender", sender.to_string(), value)];
    out.push(family(
        "pla_session_dials_total",
        "Dial attempts made (including failures), per sender.",
        MetricKind::Counter,
        one(SampleValue::Counter(stats.dials)),
    ));
    out.push(family(
        "pla_session_established_total",
        "Handshakes completed (first establishment plus resumes), per sender.",
        MetricKind::Counter,
        one(SampleValue::Counter(stats.established)),
    ));
    out.push(family(
        "pla_session_heartbeats_sent_total",
        "Heartbeat probes sent, per sender.",
        MetricKind::Counter,
        one(SampleValue::Counter(stats.heartbeats_sent)),
    ));
    out.push(family(
        "pla_session_echoes_seen_total",
        "Heartbeat echoes received back, per sender.",
        MetricKind::Counter,
        one(SampleValue::Counter(stats.echoes_seen)),
    ));
}

/// Scrapes accumulated query-side [`LookupStats`] totals (the caller
/// accumulates per-query stats into running sums).
pub fn query_families(lookups: u64, stats: &LookupStats, out: &mut Vec<MetricFamily>) {
    out.push(counter("pla_query_lookups_total", "Point/range lookups served.", lookups));
    out.push(counter(
        "pla_query_comparisons_total",
        "Index comparisons spent across all lookups.",
        stats.comparisons as u64,
    ));
}

/// Scrapes a [`QueryServerStats`] snapshot from the remote-query wire
/// tier: request/refusal counters plus the service-time histogram.
/// Register as an extra source on
/// [`CollectorAdmin`](crate::admin::CollectorAdmin) with a closure that
/// re-reads the shared server on every `/metrics`.
pub fn query_server_families(stats: &QueryServerStats, out: &mut Vec<MetricFamily>) {
    out.push(gauge(
        "pla_query_server_connections",
        "Query connections currently tracked.",
        stats.connections as f64,
    ));
    out.push(counter(
        "pla_query_server_accepted_total",
        "Query connections accepted.",
        stats.accepted,
    ));
    out.push(counter(
        "pla_query_server_requests_total",
        "Query requests answered.",
        stats.requests,
    ));
    out.push(counter(
        "pla_query_server_errors_total",
        "Answers that carried a typed query error.",
        stats.errors,
    ));
    out.push(counter(
        "pla_query_server_epoch_probes_total",
        "Epoch cache-validation probes answered.",
        stats.epoch_probes,
    ));
    out.push(counter(
        "pla_query_server_refused_total",
        "Query handshakes refused (version mismatch, non-Hello first frame).",
        stats.refused,
    ));
    out.push(counter(
        "pla_query_server_malformed_total",
        "Query connections killed by undecodable bytes.",
        stats.malformed,
    ));
    out.push(counter(
        "pla_query_server_heartbeats_total",
        "Heartbeats echoed on the query plane.",
        stats.heartbeats,
    ));
    out.push(counter(
        "pla_query_server_bytes_read_total",
        "Bytes read from query links.",
        stats.bytes_in,
    ));
    out.push(counter(
        "pla_query_server_bytes_written_total",
        "Bytes written to query links.",
        stats.bytes_out,
    ));
    out.push(counter(
        "pla_query_server_snapshot_rebuilds_total",
        "Engine rebuilds triggered by moved store epochs.",
        stats.rebuilds,
    ));
    out.push(family(
        "pla_query_server_service_seconds",
        "Per-request service time on the query server.",
        MetricKind::Histogram,
        plain(SampleValue::Histogram {
            buckets: stats.latency.buckets(),
            sum: stats.latency.sum,
            count: stats.latency.count,
        }),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::render_families;
    use pla_ingest::SegmentStore;

    #[test]
    fn store_families_render() {
        let store = SegmentStore::new();
        store.append(
            7,
            pla_ingest::StreamId(1),
            pla_core::Segment {
                t_start: 0.0,
                x_start: [1.0].into(),
                t_end: 2.0,
                x_end: [3.0].into(),
                connected: false,
                n_points: 3,
                new_recordings: 1,
            },
        );
        let mut fams = Vec::new();
        store_families(&store.snapshot(), &mut fams);
        let text = render_families(&fams);
        assert!(text.contains("pla_store_segments_total 1"));
        assert!(text.contains("pla_store_source_segments_total{source=\"7\"} 1"));
        assert!(text.contains("pla_store_source_covered_through{source=\"7\"} 2"));
    }

    #[test]
    fn query_server_families_render() {
        let mut stats =
            QueryServerStats { connections: 2, requests: 9, errors: 1, ..Default::default() };
        stats.latency.counts[0] = 9;
        stats.latency.count = 9;
        stats.latency.sum = 9.0 * 10e-6;
        let mut fams = Vec::new();
        query_server_families(&stats, &mut fams);
        let text = render_families(&fams);
        assert!(text.contains("pla_query_server_connections 2"));
        assert!(text.contains("pla_query_server_requests_total 9"));
        assert!(text.contains("pla_query_server_errors_total 1"));
        assert!(text.contains("pla_query_server_service_seconds_count 9"));
        assert!(text.contains("pla_query_server_service_seconds_bucket{le=\"0.00005\"} 9"));
    }
}
