//! Dependency-free configuration: a TOML-subset file parser plus `PLA_*`
//! environment overrides, producing typed, validated configs.
//!
//! The accepted grammar is the flat-table subset of TOML the stack
//! needs: `[section]` headers, `key = value` pairs (bools, integers,
//! quoted strings), `#` comments (whole-line or trailing). Sections map
//! to the typed structs: `[ops]` → [`OpsConfig`], `[collector]` →
//! [`CollectorConfig`], `[store]` → `pla_ingest::StoreConfig`,
//! `[ingest]` → `pla_ingest::IngestConfig`.
//!
//! Environment variables named `PLA_<SECTION>_<KEY>` (e.g.
//! `PLA_COLLECTOR_WINDOW=131072`) override file values; unknown keys —
//! in the file or under a recognized env prefix — are **rejected**, not
//! ignored, so typos fail loudly at boot.

use std::fmt;
use std::time::Duration;

use pla_ingest::{IngestConfig, StoreConfig};
use pla_net::{NetConfig, SessionConfig};

/// HTTP/admin endpoint settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpsConfig {
    /// Whether to serve the ops endpoint at all.
    pub enabled: bool,
    /// Listen address for the TCP form (`host:port`).
    pub listen: String,
    /// Per-request buffer cap in bytes.
    pub max_request: usize,
}

impl Default for OpsConfig {
    fn default() -> Self {
        Self { enabled: true, listen: "127.0.0.1:9090".to_string(), max_request: 64 * 1024 }
    }
}

/// Collector and session settings (durations in milliseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectorConfig {
    /// Stream dimensionality every connection must carry.
    pub dims: usize,
    /// Per-stream flow-control window in bytes (must match senders).
    pub window: u64,
    /// Maximum accepted frame size in bytes.
    pub max_frame: u32,
    /// Whether to run in session mode (hello/resume/heartbeats).
    pub sessions: bool,
    /// Heartbeat probe interval, ms.
    pub heartbeat_ms: u64,
    /// Liveness timeout before a silent link is detached, ms.
    pub liveness_ms: u64,
    /// Handshake deadline for a mid-`Hello` link, ms.
    pub handshake_ms: u64,
    /// Detached-session eviction TTL, ms.
    pub session_ttl_ms: u64,
    /// Initial redial backoff, ms.
    pub redial_initial_ms: u64,
    /// Redial backoff cap, ms.
    pub redial_cap_ms: u64,
    /// Seed for session-token minting.
    pub token_seed: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        let net = NetConfig::default();
        let sess = SessionConfig::default();
        Self {
            dims: 1,
            window: net.window,
            max_frame: net.max_frame,
            sessions: true,
            heartbeat_ms: sess.heartbeat_interval.as_millis() as u64,
            liveness_ms: sess.liveness_timeout.as_millis() as u64,
            handshake_ms: sess.handshake_timeout.as_millis() as u64,
            session_ttl_ms: sess.session_ttl.as_millis() as u64,
            redial_initial_ms: sess.redial_initial.as_millis() as u64,
            redial_cap_ms: sess.redial_cap.as_millis() as u64,
            token_seed: sess.token_seed,
        }
    }
}

impl CollectorConfig {
    /// The wire-level [`NetConfig`] these settings describe.
    pub fn net_config(&self) -> NetConfig {
        NetConfig { window: self.window, max_frame: self.max_frame }
    }

    /// The [`SessionConfig`] these settings describe (version stays the
    /// protocol's own — it is a wire constant, not an operator knob).
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            heartbeat_interval: Duration::from_millis(self.heartbeat_ms),
            liveness_timeout: Duration::from_millis(self.liveness_ms),
            handshake_timeout: Duration::from_millis(self.handshake_ms),
            session_ttl: Duration::from_millis(self.session_ttl_ms),
            redial_initial: Duration::from_millis(self.redial_initial_ms),
            redial_cap: Duration::from_millis(self.redial_cap_ms),
            token_seed: self.token_seed,
            ..SessionConfig::default()
        }
    }
}

/// The full application config: one struct per section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AppConfig {
    /// `[ops]` — HTTP/admin endpoint.
    pub ops: OpsConfig,
    /// `[collector]` — wire and session settings.
    pub collector: CollectorConfig,
    /// `[store]` — segment-store sharding.
    pub store: StoreConfig,
    /// `[ingest]` — local ingest engine settings.
    pub ingest: IngestConfig,
}

/// A configuration error: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Malformed line (no `=`, bad section header, unterminated quote).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A `[section]` the schema does not define.
    UnknownSection(String),
    /// A key the section does not define.
    UnknownKey {
        /// The section the key appeared in.
        section: String,
        /// The offending key.
        key: String,
    },
    /// A value that does not parse as the key's type, or fails
    /// validation.
    InvalidValue {
        /// The offending key (`section.key`).
        key: String,
        /// The raw value.
        value: String,
        /// What the key expects.
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { line, msg } => write!(f, "config line {line}: {msg}"),
            ConfigError::UnknownSection(s) => write!(f, "unknown config section [{s}]"),
            ConfigError::UnknownKey { section, key } => {
                write!(f, "unknown config key {section}.{key}")
            }
            ConfigError::InvalidValue { key, value, expected } => {
                write!(f, "config key {key}: {value:?} is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Strips a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_quotes {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_quotes = false;
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == '#' {
            return &line[..i];
        }
    }
    line
}

/// Unquotes a value token: `"..."` with `\"`/`\\`/`\n` escapes, or the
/// bare token verbatim (the form env values arrive in).
fn unquote(raw: &str, line: usize) -> Result<String, ConfigError> {
    let raw = raw.trim();
    if !raw.starts_with('"') {
        return Ok(raw.to_string());
    }
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or(ConfigError::Syntax { line, msg: "unterminated string".to_string() })?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            _ => {
                return Err(ConfigError::Syntax { line, msg: "bad string escape".to_string() });
            }
        }
    }
    Ok(out)
}

macro_rules! parse_num {
    ($cfg:expr, $section:literal, $key:literal, $raw:expr, $ty:ty, $min:expr) => {{
        let v: $ty = $raw.parse().map_err(|_| ConfigError::InvalidValue {
            key: concat!($section, ".", $key).to_string(),
            value: $raw.to_string(),
            expected: stringify!($ty),
        })?;
        if v < $min {
            return Err(ConfigError::InvalidValue {
                key: concat!($section, ".", $key).to_string(),
                value: $raw.to_string(),
                expected: concat!(stringify!($ty), " >= ", stringify!($min)),
            });
        }
        v
    }};
}

fn parse_bool(section: &str, key: &str, raw: &str) -> Result<bool, ConfigError> {
    match raw {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(ConfigError::InvalidValue {
            key: format!("{section}.{key}"),
            value: raw.to_string(),
            expected: "bool",
        }),
    }
}

impl AppConfig {
    /// Applies one `section.key = value` assignment. Shared by the file
    /// parser and the env-override path, so both enforce the same
    /// schema, types, and bounds.
    fn set(&mut self, section: &str, key: &str, raw: &str) -> Result<(), ConfigError> {
        match (section, key) {
            ("ops", "enabled") => self.ops.enabled = parse_bool(section, key, raw)?,
            ("ops", "listen") => self.ops.listen = raw.to_string(),
            ("ops", "max_request") => {
                self.ops.max_request = parse_num!(self, "ops", "max_request", raw, usize, 1)
            }
            ("collector", "dims") => {
                self.collector.dims = parse_num!(self, "collector", "dims", raw, usize, 1)
            }
            ("collector", "window") => {
                self.collector.window = parse_num!(self, "collector", "window", raw, u64, 1)
            }
            ("collector", "max_frame") => {
                self.collector.max_frame = parse_num!(self, "collector", "max_frame", raw, u32, 1)
            }
            ("collector", "sessions") => self.collector.sessions = parse_bool(section, key, raw)?,
            ("collector", "heartbeat_ms") => {
                self.collector.heartbeat_ms =
                    parse_num!(self, "collector", "heartbeat_ms", raw, u64, 1)
            }
            ("collector", "liveness_ms") => {
                self.collector.liveness_ms =
                    parse_num!(self, "collector", "liveness_ms", raw, u64, 1)
            }
            ("collector", "handshake_ms") => {
                self.collector.handshake_ms =
                    parse_num!(self, "collector", "handshake_ms", raw, u64, 1)
            }
            ("collector", "session_ttl_ms") => {
                self.collector.session_ttl_ms =
                    parse_num!(self, "collector", "session_ttl_ms", raw, u64, 1)
            }
            ("collector", "redial_initial_ms") => {
                self.collector.redial_initial_ms =
                    parse_num!(self, "collector", "redial_initial_ms", raw, u64, 1)
            }
            ("collector", "redial_cap_ms") => {
                self.collector.redial_cap_ms =
                    parse_num!(self, "collector", "redial_cap_ms", raw, u64, 1)
            }
            ("collector", "token_seed") => {
                self.collector.token_seed = raw.parse().map_err(|_| ConfigError::InvalidValue {
                    key: "collector.token_seed".to_string(),
                    value: raw.to_string(),
                    expected: "u64",
                })?
            }
            ("store", "shards") => {
                self.store.shards = parse_num!(self, "store", "shards", raw, usize, 1)
            }
            ("store", "seal_threshold") => {
                self.store.seal_threshold =
                    parse_num!(self, "store", "seal_threshold", raw, usize, 1)
            }
            ("ingest", "shards") => {
                self.ingest.shards = parse_num!(self, "ingest", "shards", raw, usize, 1)
            }
            ("ingest", "queue_depth") => {
                self.ingest.queue_depth = parse_num!(self, "ingest", "queue_depth", raw, usize, 1)
            }
            ("ingest", "shard_log") => self.ingest.shard_log = parse_bool(section, key, raw)?,
            ("ops" | "collector" | "store" | "ingest", _) => {
                return Err(ConfigError::UnknownKey {
                    section: section.to_string(),
                    key: key.to_string(),
                });
            }
            _ => return Err(ConfigError::UnknownSection(section.to_string())),
        }
        Ok(())
    }

    /// Parses a config file body on top of the defaults.
    pub fn parse_str(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = Self::default();
        let mut section = String::new();
        for (i, raw_line) in text.lines().enumerate() {
            let ln = i + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or(ConfigError::Syntax {
                    line: ln,
                    msg: "unterminated section header".to_string(),
                })?;
                section = name.trim().to_string();
                if !matches!(section.as_str(), "ops" | "collector" | "store" | "ingest") {
                    return Err(ConfigError::UnknownSection(section));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(ConfigError::Syntax { line: ln, msg: "expected key = value".to_string() })?;
            let key = key.trim();
            if section.is_empty() {
                return Err(ConfigError::Syntax {
                    line: ln,
                    msg: format!("key {key:?} outside any [section]"),
                });
            }
            let value = unquote(value, ln)?;
            cfg.set(&section, key, &value)?;
        }
        Ok(cfg)
    }

    /// Applies `PLA_<SECTION>_<KEY>` overrides from an explicit
    /// variable iterator (tests inject; [`load_str`](Self::load_str)
    /// passes the process environment). Variables under a recognized
    /// section prefix with an unknown key are rejected; everything else
    /// is ignored.
    pub fn apply_env<I>(&mut self, vars: I) -> Result<(), ConfigError>
    where
        I: IntoIterator<Item = (String, String)>,
    {
        for (name, value) in vars {
            let Some(rest) = name.strip_prefix("PLA_") else { continue };
            let Some((section, key)) =
                rest.split_once('_').map(|(s, k)| (s.to_ascii_lowercase(), k.to_ascii_lowercase()))
            else {
                continue;
            };
            if !matches!(section.as_str(), "ops" | "collector" | "store" | "ingest") {
                continue;
            }
            self.set(&section, &key, value.trim())?;
        }
        Ok(())
    }

    /// File body + env overrides in one step: env wins over file, file
    /// wins over defaults.
    pub fn load_str<I>(text: &str, vars: I) -> Result<Self, ConfigError>
    where
        I: IntoIterator<Item = (String, String)>,
    {
        let mut cfg = Self::parse_str(text)?;
        cfg.apply_env(vars)?;
        Ok(cfg)
    }

    /// Reads `path` and applies the process environment's `PLA_*`
    /// overrides.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::load_str(&text, std::env::vars()).map_err(|e| e.to_string())
    }

    /// Serializes every section and key back to the file grammar, such
    /// that `parse_str(cfg.to_file_string()) == cfg` — the round-trip
    /// the config tests pin.
    pub fn to_file_string(&self) -> String {
        let quote = |s: &str| {
            format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n"))
        };
        format!(
            "[ops]\nenabled = {}\nlisten = {}\nmax_request = {}\n\n\
             [collector]\ndims = {}\nwindow = {}\nmax_frame = {}\nsessions = {}\n\
             heartbeat_ms = {}\nliveness_ms = {}\nhandshake_ms = {}\nsession_ttl_ms = {}\n\
             redial_initial_ms = {}\nredial_cap_ms = {}\ntoken_seed = {}\n\n\
             [store]\nshards = {}\nseal_threshold = {}\n\n\
             [ingest]\nshards = {}\nqueue_depth = {}\nshard_log = {}\n",
            self.ops.enabled,
            quote(&self.ops.listen),
            self.ops.max_request,
            self.collector.dims,
            self.collector.window,
            self.collector.max_frame,
            self.collector.sessions,
            self.collector.heartbeat_ms,
            self.collector.liveness_ms,
            self.collector.handshake_ms,
            self.collector.session_ttl_ms,
            self.collector.redial_initial_ms,
            self.collector.redial_cap_ms,
            self.collector.token_seed,
            self.store.shards,
            self.store.seal_threshold,
            self.ingest.shards,
            self.ingest.queue_depth,
            self.ingest.shard_log,
        )
    }
}
