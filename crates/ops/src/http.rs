//! A minimal std-only HTTP/1.1 server behind the `pla-net`
//! [`Acceptor`]/[`Link`] seam.
//!
//! Just enough HTTP for an operations endpoint: request-line + headers,
//! `Content-Length` bodies, keep-alive responses. Because `MemoryLink`
//! never signals EOF (and `TcpLink` is non-blocking), the server is a
//! sans-I/O pump: [`OpsServer::pump`] is the deterministic sync form,
//! [`drive_ops`] the async loop on the shared runtime — the same split
//! as the collector.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;
use std::time::Duration;

use pla_net::listen::Acceptor;
use pla_net::runtime;
use pla_net::Link;

/// Hard cap on a buffered request (start-line + headers + body).
const DEFAULT_MAX_REQUEST: usize = 64 * 1024;
/// Per-pump read chunk.
const READ_CHUNK: usize = 4096;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, e.g. `/admin/drain/3` (query strings are
    /// passed through verbatim; the admin API uses none).
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// An HTTP response under construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self { status, content_type: "text/plain; charset=utf-8", body: body.into().into_bytes() }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self { status, content_type: "application/json", body: body.into().into_bytes() }
    }

    /// The Prometheus exposition content type.
    pub fn exposition(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// `404 Not Found`.
    pub fn not_found() -> Self {
        Self::text(404, "not found\n")
    }

    /// `405 Method Not Allowed`.
    pub fn method_not_allowed() -> Self {
        Self::text(405, "method not allowed\n")
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            _ => "",
        }
    }

    fn encode(&self) -> Vec<u8> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// A request handler. Implemented for `FnMut(&Request) -> Response`
/// closures; [`CollectorAdmin`](crate::admin::CollectorAdmin) is the
/// full admin surface.
pub trait Handler {
    /// Produces the response for one request.
    fn handle(&mut self, req: &Request) -> Response;
}

impl<F: FnMut(&Request) -> Response> Handler for F {
    fn handle(&mut self, req: &Request) -> Response {
        self(req)
    }
}

/// One accepted HTTP connection: buffered inbound bytes and the
/// unflushed tail of outbound responses.
struct HttpConn<L: Link> {
    link: L,
    inbuf: Vec<u8>,
    out: Vec<u8>,
    /// Peer signaled close (EOF) or the request stream went bad; the
    /// connection is dropped once `out` drains.
    closing: bool,
    /// The link itself failed; drop immediately.
    dead: bool,
}

/// The operations HTTP server: accepts links, parses pipelined
/// keep-alive requests, and hands each to the [`Handler`].
pub struct OpsServer<A: Acceptor, H: Handler> {
    acceptor: A,
    handler: H,
    conns: Vec<HttpConn<A::Link>>,
    max_request: usize,
    requests: u64,
}

impl<A: Acceptor, H: Handler> OpsServer<A, H> {
    /// New server over `acceptor`, routing every request through
    /// `handler`.
    pub fn new(acceptor: A, handler: H) -> Self {
        Self { acceptor, handler, conns: Vec::new(), max_request: DEFAULT_MAX_REQUEST, requests: 0 }
    }

    /// Overrides the per-request buffer cap (default 64 KiB). Requests
    /// exceeding it get `413` and the connection closes.
    pub fn with_max_request(mut self, max: usize) -> Self {
        self.max_request = max;
        self
    }

    /// Open HTTP connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Requests served over the server's lifetime.
    pub fn requests_served(&self) -> u64 {
        self.requests
    }

    /// The handler, for post-run inspection in tests.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// The handler, mutably — e.g. to register extra scrape sources on
    /// a running [`CollectorAdmin`](crate::admin::CollectorAdmin).
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// One non-blocking round: accept pending links, read what's
    /// available, serve every complete request, flush what fits.
    /// Returns bytes moved (read + written).
    pub fn pump(&mut self) -> usize {
        while let Ok(Some(link)) = self.acceptor.try_accept() {
            self.conns.push(HttpConn {
                link,
                inbuf: Vec::new(),
                out: Vec::new(),
                closing: false,
                dead: false,
            });
        }
        let mut moved = 0;
        let max_request = self.max_request;
        for conn in &mut self.conns {
            moved += Self::pump_conn(conn, &mut self.handler, &mut self.requests, max_request);
        }
        self.conns.retain(|c| !(c.dead || (c.closing && c.out.is_empty())));
        moved
    }

    fn pump_conn(
        conn: &mut HttpConn<A::Link>,
        handler: &mut H,
        requests: &mut u64,
        max_request: usize,
    ) -> usize {
        let mut moved = 0;
        let mut chunk = [0u8; READ_CHUNK];
        while !conn.closing {
            match conn.link.try_read(&mut chunk) {
                Ok(0) => {
                    conn.closing = true;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    moved += n;
                    if conn.inbuf.len() > max_request && find_head_end(&conn.inbuf).is_none() {
                        conn.out.extend_from_slice(&Response::text(413, "too large\n").encode());
                        conn.closing = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    conn.dead = true;
                    return moved;
                }
            }
        }
        loop {
            match take_request(&mut conn.inbuf, max_request) {
                Ok(Some(req)) => {
                    *requests += 1;
                    conn.out.extend_from_slice(&handler.handle(&req).encode());
                }
                Ok(None) => break,
                Err(resp) => {
                    conn.out.extend_from_slice(&resp.encode());
                    conn.closing = true;
                    break;
                }
            }
        }
        while !conn.out.is_empty() {
            match conn.link.try_write(&conn.out) {
                Ok(0) => break,
                Ok(n) => {
                    conn.out.drain(..n);
                    moved += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        moved
    }
}

/// Byte offset just past the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Pops one complete request off the front of `buf`. `Ok(None)` = need
/// more bytes; `Err` = malformed or oversized, respond and close.
fn take_request(buf: &mut Vec<u8>, max_request: usize) -> Result<Option<Request>, Response> {
    let Some(head_end) = find_head_end(buf) else { return Ok(None) };
    if head_end > max_request {
        return Err(Response::text(413, "too large\n"));
    }
    let head =
        std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| Response::text(400, "bad head\n"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, path, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() || !path.starts_with('/') || !version.starts_with("HTTP/1.") {
        return Err(Response::text(400, "bad request line\n"));
    }
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(Response::text(400, "bad header\n"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| Response::text(400, "bad content-length\n"))?;
        }
    }
    if content_length > max_request {
        return Err(Response::text(413, "too large\n"));
    }
    if buf.len() < head_end + content_length {
        return Ok(None);
    }
    let method = method.to_string();
    let path = path.to_string();
    let body = buf[head_end..head_end + content_length].to_vec();
    buf.drain(..head_end + content_length);
    Ok(Some(Request { method, path, body }))
}

/// Drives an [`OpsServer`] forever on the shared single-thread runtime:
/// pump, then yield (after progress) or sleep ~1 ms (when idle) — the
/// same cadence [`drive_collector`](pla_net::drive_collector) uses in
/// session mode. Spawn it next to the collector tasks; it completes only
/// when the surrounding root future is dropped.
pub async fn drive_ops<A: Acceptor, H: Handler>(server: Rc<RefCell<OpsServer<A, H>>>) {
    loop {
        let moved = server.borrow_mut().pump();
        if moved > 0 {
            runtime::yield_now().await;
        } else {
            runtime::sleep(Duration::from_millis(1)).await;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_net::listen::{MemoryAcceptor, MemoryConnector};
    use pla_net::MemoryLink;

    fn serve_echo() -> (OpsServer<MemoryAcceptor, impl Handler>, MemoryConnector) {
        let acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        let server = OpsServer::new(acceptor, |req: &Request| {
            Response::text(200, format!("{} {} {}", req.method, req.path, req.body.len()))
        });
        (server, connector)
    }

    fn read_all(link: &mut MemoryLink) -> Vec<u8> {
        let mut out = Vec::new();
        let mut chunk = [0u8; 512];
        while let Ok(n) = link.try_read(&mut chunk) {
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        out
    }

    #[test]
    fn serves_keep_alive_requests() {
        let (mut server, connector) = serve_echo();
        let mut client = connector.connect(4096);
        client.try_write(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        server.pump();
        let first = String::from_utf8(read_all(&mut client)).unwrap();
        assert!(first.starts_with("HTTP/1.1 200 OK\r\n"), "{first}");
        assert!(first.ends_with("GET /healthz 0"), "{first}");

        // Same connection, second request, with a body.
        client.try_write(b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc").unwrap();
        server.pump();
        let second = String::from_utf8(read_all(&mut client)).unwrap();
        assert!(second.ends_with("POST /x 3"), "{second}");
        assert_eq!(server.requests_served(), 2);
        assert_eq!(server.connections(), 1);
    }

    #[test]
    fn partial_arrival_waits_for_the_rest() {
        let (mut server, connector) = serve_echo();
        let mut client = connector.connect(4096);
        client.try_write(b"GET /slow HT").unwrap();
        server.pump();
        assert!(read_all(&mut client).is_empty(), "incomplete request must not be answered");
        client.try_write(b"TP/1.1\r\n\r\n").unwrap();
        server.pump();
        let resp = String::from_utf8(read_all(&mut client)).unwrap();
        assert!(resp.ends_with("GET /slow 0"), "{resp}");
    }

    #[test]
    fn malformed_request_line_gets_400_and_close() {
        let (mut server, connector) = serve_echo();
        let mut client = connector.connect(4096);
        client.try_write(b"nonsense\r\n\r\n").unwrap();
        server.pump();
        let resp = String::from_utf8(read_all(&mut client)).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");
        server.pump();
        assert_eq!(server.connections(), 0, "malformed connection must be dropped");
    }

    #[test]
    fn oversized_request_gets_413() {
        let acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        let mut server =
            OpsServer::new(acceptor, |_: &Request| Response::text(200, "ok")).with_max_request(64);
        let mut client = connector.connect(8192);
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(300));
        client.try_write(huge.as_bytes()).unwrap();
        server.pump();
        let resp = String::from_utf8(read_all(&mut client)).unwrap();
        assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");
    }
}
