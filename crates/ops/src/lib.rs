//! # pla-ops — the operations tier
//!
//! Everything the pipeline already measures — `IngestReport`,
//! `CollectorStats`/`ConnStats`, `ReceiverStats`, `StoreSnapshot`
//! watermarks and epochs, `LookupStats` — made operable: a metrics
//! registry with Prometheus text exposition, a minimal HTTP/1.1 admin
//! surface on the `pla-net` runtime, and file/env configuration so a
//! collector+store+query stack boots from one file.
//!
//! Three layers:
//!
//! - [`metrics`] — lock-cheap counter/gauge/histogram primitives
//!   (alloc-free increments), a [`Registry`] rendering
//!   exposition text, and [`collect`] adapters scraping the existing
//!   stats structs into metric families.
//! - [`http`] + [`admin`] — an [`OpsServer`] behind the
//!   existing `Acceptor`/`Link` seam (deterministically testable over
//!   `MemoryAcceptor`, drivable on both reactors), and the
//!   [`CollectorAdmin`] handler serving
//!   `/metrics`, `/healthz`, and the JSON admin API.
//! - [`config`] — a dependency-free TOML-subset parser with `PLA_*` env
//!   overrides producing typed, validated configs.
//!
//! Metric names and labels are a **wire contract** (dashboards key on
//! them); the naming convention is `pla_<subsystem>_<name>{labels}`.
//! See `crates/ops/README.md` for the endpoint and metric tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admin;
pub mod collect;
pub mod config;
pub mod http;
pub mod metrics;

pub use admin::CollectorAdmin;
pub use config::{AppConfig, CollectorConfig, ConfigError, OpsConfig};
pub use http::{OpsServer, Request, Response};
pub use metrics::{
    parse_exposition, render_families, Collect, Counter, Gauge, Histogram, MetricFamily,
    MetricKind, ParsedSample, Registry, Sample, SampleValue,
};
