//! Lock-cheap metric primitives and a Prometheus text-exposition registry.
//!
//! Counters and gauges are single `AtomicU64`s behind an `Arc`; histograms
//! are a fixed bucket array of atomics. Every increment path —
//! [`Counter::inc`], [`Gauge::set`], [`Histogram::observe`] — is a handful
//! of relaxed atomic ops and performs **zero heap allocations**, so handles
//! can live adjacent to the filter hot path. Allocation happens only at
//! registration and render time.
//!
//! Metric names and label sets are a **wire contract**: dashboards and
//! alert rules key on them, so renames are breaking changes. The repo-wide
//! convention is `pla_<subsystem>_<name>{labels}` with counters suffixed
//! `_total` (see `crates/ops/README.md`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// New free-standing counter at zero (registry-less use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one. Alloc-free.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`. Alloc-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (stored as its bit pattern in an `AtomicU64`).
/// Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// New free-standing gauge at `0.0` (registry-less use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge. Alloc-free.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (CAS loop over the stored bits). Alloc-free.
    #[inline]
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. The
    /// implicit `+Inf` bucket is `counts[bounds.len()]`.
    bounds: Box<[f64]>,
    /// Per-bucket observation counts (not cumulative; render cumulates).
    counts: Box<[AtomicU64]>,
    /// Sum of observed values, stored as `f64` bits (CAS-add).
    sum_bits: AtomicU64,
    /// Total observation count.
    count: AtomicU64,
}

/// A fixed-bucket histogram. Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// New free-standing histogram with the given finite bucket upper
    /// bounds (strictly increasing; a `+Inf` bucket is always implicit).
    ///
    /// # Panics
    /// If `bounds` is unsorted, has duplicates, or contains a non-finite
    /// bound.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(bounds.iter().all(|b| b.is_finite()), "histogram bounds must be finite");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramCore {
            bounds: bounds.into(),
            counts,
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one observation: a linear scan for the bucket (bucket
    /// counts are small and fixed), one add each to the bucket, the sum,
    /// and the count. Alloc-free.
    #[inline]
    pub fn observe(&self, v: f64) {
        let core = &*self.0;
        let idx = core.bounds.iter().position(|b| v <= *b).unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, count)` per finite bucket (non-cumulative), plus the
    /// overflow count for the implicit `+Inf` bucket.
    pub fn buckets(&self) -> (Vec<(f64, u64)>, u64) {
        let core = &*self.0;
        let finite = core
            .bounds
            .iter()
            .zip(core.counts.iter())
            .map(|(b, c)| (*b, c.load(Ordering::Relaxed)))
            .collect();
        (finite, core.counts[core.bounds.len()].load(Ordering::Relaxed))
    }
}

/// Kind of a metric family — drives the `# TYPE` line and value layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`_total` naming convention).
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Bucketed distribution (`_bucket`/`_sum`/`_count` series).
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Value carried by one sample within a family.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading: non-cumulative finite buckets as
    /// `(upper_bound, count)`, the `+Inf` overflow count folded into
    /// `count`, plus the sum of observations.
    Histogram {
        /// `(upper_bound, count)` per finite bucket, non-cumulative.
        buckets: Vec<(f64, u64)>,
        /// Sum of all observations.
        sum: f64,
        /// Total observation count (including the `+Inf` overflow).
        count: u64,
    },
}

/// One labeled sample of a metric family.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label pairs, `(name, value)`. Order is canonicalized at render.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SampleValue,
}

/// A named metric with help text and its samples.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`pla_<subsystem>_<name>`); must match
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    pub name: String,
    /// One-line help text (escaped at render).
    pub help: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Samples, one per label set.
    pub samples: Vec<Sample>,
}

/// A source of metric families scraped at render time. Implemented for
/// closures, so `registry.collect_fn(move |out| ...)` is the common form.
pub trait Collect {
    /// Appends this source's current families to `out`.
    fn collect(&self, out: &mut Vec<MetricFamily>);
}

impl<F: Fn(&mut Vec<MetricFamily>)> Collect for F {
    fn collect(&self, out: &mut Vec<MetricFamily>) {
        self(out)
    }
}

enum Primitive {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct OwnedFamily {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<(Vec<(String, String)>, Primitive)>,
}

/// Registry of owned metric primitives plus [`Collect`] scrape sources,
/// rendering Prometheus text exposition format.
#[derive(Default)]
pub struct Registry {
    families: Vec<OwnedFamily>,
    collectors: Vec<Box<dyn Collect>>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family_mut(&mut self, name: &str, help: &str, kind: MetricKind) -> &mut OwnedFamily {
        assert!(valid_name(name), "invalid metric name {name:?}");
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            assert!(
                self.families[i].kind == kind,
                "metric {name:?} re-registered with a different kind"
            );
            return &mut self.families[i];
        }
        self.families.push(OwnedFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        self.families.last_mut().expect("just pushed")
    }

    fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        labels
            .iter()
            .inspect(|(k, _)| assert!(valid_name(k), "invalid label name {k:?}"))
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    /// Registers (or re-fetches the family of) an unlabeled counter.
    pub fn counter(&mut self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a counter series under `labels` within family `name`.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let owned = Self::own_labels(labels);
        let c = Counter::new();
        self.family_mut(name, help, MetricKind::Counter)
            .series
            .push((owned, Primitive::Counter(c.clone())));
        c
    }

    /// Registers an unlabeled gauge.
    pub fn gauge(&mut self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers a gauge series under `labels` within family `name`.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let owned = Self::own_labels(labels);
        let g = Gauge::new();
        self.family_mut(name, help, MetricKind::Gauge)
            .series
            .push((owned, Primitive::Gauge(g.clone())));
        g
    }

    /// Registers an unlabeled histogram with the given finite bucket
    /// upper bounds.
    pub fn histogram(&mut self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers a histogram series under `labels` within family `name`.
    pub fn histogram_with(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let owned = Self::own_labels(labels);
        let h = Histogram::new(bounds);
        self.family_mut(name, help, MetricKind::Histogram)
            .series
            .push((owned, Primitive::Histogram(h.clone())));
        h
    }

    /// Adds a scrape source consulted on every [`gather`](Self::gather).
    pub fn collect_fn(&mut self, c: impl Collect + 'static) {
        self.collectors.push(Box::new(c));
    }

    /// Snapshots every owned primitive and scrape source into families,
    /// sorted deterministically (by name, then label set).
    pub fn gather(&self) -> Vec<MetricFamily> {
        let mut out: Vec<MetricFamily> = Vec::with_capacity(self.families.len());
        for fam in &self.families {
            let samples = fam
                .series
                .iter()
                .map(|(labels, prim)| Sample {
                    labels: labels.clone(),
                    value: match prim {
                        Primitive::Counter(c) => SampleValue::Counter(c.get()),
                        Primitive::Gauge(g) => SampleValue::Gauge(g.get()),
                        Primitive::Histogram(h) => {
                            let (buckets, _inf) = h.buckets();
                            SampleValue::Histogram { buckets, sum: h.sum(), count: h.count() }
                        }
                    },
                })
                .collect();
            out.push(MetricFamily {
                name: fam.name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                samples,
            });
        }
        for c in &self.collectors {
            c.collect(&mut out);
        }
        sort_families(&mut out);
        out
    }

    /// Renders the full registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        render_families(&self.gather())
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("families", &self.families.len())
            .field("collectors", &self.collectors.len())
            .finish()
    }
}

/// Canonical ordering: families by name, samples by label vector. Families
/// sharing a name (owned + scraped) are merged into one block.
fn sort_families(families: &mut Vec<MetricFamily>) {
    families.sort_by(|a, b| a.name.cmp(&b.name));
    let mut merged: Vec<MetricFamily> = Vec::with_capacity(families.len());
    for fam in families.drain(..) {
        match merged.last_mut() {
            Some(last) if last.name == fam.name => last.samples.extend(fam.samples),
            _ => merged.push(fam),
        }
    }
    for fam in merged.iter_mut() {
        fam.samples.sort_by(|a, b| a.labels.cmp(&b.labels));
    }
    *families = merged;
}

/// Renders pre-gathered families (sorted and merged first, so callers may
/// concatenate scraped sets from several subsystems).
pub fn render_families(families: &[MetricFamily]) -> String {
    let mut fams = families.to_vec();
    sort_families(&mut fams);
    let mut out = String::new();
    for fam in &fams {
        let _ = writeln!(out, "# HELP {} {}", fam.name, escape_help(&fam.help));
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for sample in &fam.samples {
            render_sample(&mut out, &fam.name, sample);
        }
    }
    out
}

fn render_sample(out: &mut String, name: &str, sample: &Sample) {
    match &sample.value {
        SampleValue::Counter(v) => {
            render_series(out, name, &sample.labels, None);
            let _ = writeln!(out, " {v}");
        }
        SampleValue::Gauge(v) => {
            render_series(out, name, &sample.labels, None);
            let _ = writeln!(out, " {}", fmt_value(*v));
        }
        SampleValue::Histogram { buckets, sum, count } => {
            let bucket_name = format!("{name}_bucket");
            let mut cumulative = 0u64;
            for (bound, c) in buckets {
                cumulative += c;
                render_series(out, &bucket_name, &sample.labels, Some(&fmt_value(*bound)));
                let _ = writeln!(out, " {cumulative}");
            }
            render_series(out, &bucket_name, &sample.labels, Some("+Inf"));
            let _ = writeln!(out, " {count}");
            render_series(out, &format!("{name}_sum"), &sample.labels, None);
            let _ = writeln!(out, " {}", fmt_value(*sum));
            render_series(out, &format!("{name}_count"), &sample.labels, None);
            let _ = writeln!(out, " {count}");
        }
    }
}

fn render_series(out: &mut String, name: &str, labels: &[(String, String)], le: Option<&str>) {
    out.push_str(name);
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
}

/// Escapes a HELP line: `\` → `\\`, newline → `\n`.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Exposition float formatting: `+Inf`/`-Inf`/`NaN`, else Rust `Display`
/// (shortest round-trippable decimal).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// One parsed sample line of an exposition document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Series name (for histograms, the suffixed `_bucket`/`_sum`/`_count`
    /// name as it appears on the wire).
    pub name: String,
    /// Label pairs in wire order, unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` mapped to the f64 specials).
    pub value: f64,
}

/// Minimal exposition-format line parser: validates `# HELP`/`# TYPE`
/// comment structure and parses every sample line into name, unescaped
/// labels, and value. The golden/property tests pin that
/// [`render_families`] output always round-trips through this.
pub fn parse_exposition(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut samples = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let keyword = parts.next().unwrap_or_default();
            let name = parts.next().ok_or_else(|| format!("line {ln}: bare comment keyword"))?;
            if !valid_name(name) {
                return Err(format!("line {ln}: invalid metric name {name:?}"));
            }
            match keyword {
                "HELP" => {}
                "TYPE" => {
                    let ty = parts.next().ok_or_else(|| format!("line {ln}: TYPE without kind"))?;
                    if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {ln}: unknown TYPE {ty:?}"));
                    }
                }
                other => return Err(format!("line {ln}: unknown comment keyword {other:?}")),
            }
            continue;
        }
        samples.push(parse_sample_line(line).map_err(|e| format!("line {ln}: {e}"))?);
    }
    Ok(samples)
}

fn parse_sample_line(line: &str) -> Result<ParsedSample, String> {
    let (series, value_str) = match line.find('{') {
        Some(brace) => {
            let close = find_closing_brace(line, brace)
                .ok_or_else(|| "unterminated label set".to_string())?;
            (&line[..close + 1], line[close + 1..].trim_start())
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| "sample without value".to_string())?;
            (&line[..sp], line[sp + 1..].trim_start())
        }
    };
    let (name, labels) = match series.find('{') {
        Some(brace) => (&series[..brace], parse_labels(&series[brace + 1..series.len() - 1])?),
        None => (series, Vec::new()),
    };
    if !valid_name(name) {
        return Err(format!("invalid series name {name:?}"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other.parse::<f64>().map_err(|_| format!("bad value {other:?}"))?,
    };
    Ok(ParsedSample { name: name.to_string(), labels, value })
}

/// Index of the `}` closing the label set opened at `open`, honoring
/// quoted (and escaped) label values.
fn find_closing_brace(line: &str, open: usize) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, b) in bytes.iter().enumerate().skip(open + 1) {
        if in_quotes {
            if escaped {
                escaped = false;
            } else if *b == b'\\' {
                escaped = true;
            } else if *b == b'"' {
                in_quotes = false;
            }
        } else if *b == b'"' {
            in_quotes = true;
        } else if *b == b'}' {
            return Some(i);
        }
    }
    None
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| "label without '='".to_string())?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err("unquoted label value".to_string());
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err("bad escape in label value".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key.to_string(), value));
        rest = &after[1 + end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[1.0, 2.0]);
        for v in [0.5, 1.0, 1.5, 9.0] {
            h.observe(v);
        }
        let (finite, inf) = h.buckets();
        assert_eq!(finite, vec![(1.0, 2), (2.0, 1)]);
        assert_eq!(inf, 1);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn render_is_deterministic_and_sorted() {
        let mut reg = Registry::new();
        reg.counter_with("pla_z_total", "Z.", &[("b", "2")]).inc();
        reg.counter_with("pla_z_total", "Z.", &[("a", "1")]).inc();
        reg.gauge("pla_a", "A.").set(1.0);
        let first = reg.render();
        assert_eq!(first, reg.render());
        let a = first.find("pla_a").unwrap();
        let z = first.find("pla_z_total").unwrap();
        assert!(a < z, "families must render in name order");
        let la = first.find("{a=\"1\"}").unwrap();
        let lb = first.find("{b=\"2\"}").unwrap();
        assert!(la < lb, "samples must render in label order");
    }

    #[test]
    fn rendered_output_reparses() {
        let mut reg = Registry::new();
        reg.counter_with("pla_x_total", "X.", &[("path", "a\\b\"c\nd")]).add(7);
        reg.histogram("pla_h", "H.", &[0.5, 1.0]).observe(0.7);
        let text = reg.render();
        let parsed = parse_exposition(&text).expect("render must re-parse");
        let x = parsed.iter().find(|s| s.name == "pla_x_total").unwrap();
        assert_eq!(x.labels, vec![("path".to_string(), "a\\b\"c\nd".to_string())]);
        assert_eq!(x.value, 7.0);
        let inf = parsed
            .iter()
            .find(|s| s.name == "pla_h_bucket" && s.labels.iter().any(|(_, v)| v == "+Inf"))
            .unwrap();
        assert_eq!(inf.value, 1.0);
    }
}
