//! Config layer tests: defaults, file parsing, env precedence, loud
//! rejection of unknown keys/sections/bad values, and the full-field
//! round-trip through `to_file_string`.

use pla_ops::{AppConfig, ConfigError};

#[test]
fn empty_file_is_the_defaults() {
    assert_eq!(AppConfig::parse_str("").expect("empty parses"), AppConfig::default());
    assert_eq!(
        AppConfig::parse_str("# only comments\n\n  # and blanks\n").expect("comments parse"),
        AppConfig::default()
    );
}

#[test]
fn file_values_override_defaults() {
    let cfg = AppConfig::parse_str(
        "[ops]\n\
         enabled = false\n\
         listen = \"0.0.0.0:9100\"  # trailing comment\n\
         max_request = 4096\n\
         \n\
         [collector]\n\
         dims = 3\n\
         window = 2048\n\
         sessions = false\n\
         token_seed = 12345\n\
         \n\
         [store]\n\
         shards = 4\n\
         \n\
         [ingest]\n\
         queue_depth = 64\n\
         shard_log = true\n",
    )
    .expect("valid file");
    assert!(!cfg.ops.enabled);
    assert_eq!(cfg.ops.listen, "0.0.0.0:9100");
    assert_eq!(cfg.ops.max_request, 4096);
    assert_eq!(cfg.collector.dims, 3);
    assert_eq!(cfg.collector.window, 2048);
    assert!(!cfg.collector.sessions);
    assert_eq!(cfg.collector.token_seed, 12345);
    assert_eq!(cfg.store.shards, 4);
    assert_eq!(cfg.ingest.queue_depth, 64);
    assert!(cfg.ingest.shard_log);
    // Untouched keys keep their defaults.
    assert_eq!(cfg.collector.max_frame, AppConfig::default().collector.max_frame);
    // The typed views reflect the file.
    assert_eq!(cfg.collector.net_config().window, 2048);
}

#[test]
fn env_wins_over_file_and_file_over_defaults() {
    let file = "[collector]\nwindow = 2048\nheartbeat_ms = 75\n";
    let env = vec![
        ("PLA_COLLECTOR_WINDOW".to_string(), "4096".to_string()),
        ("PLA_OPS_LISTEN".to_string(), "10.0.0.1:9200".to_string()),
        // Noise the loader must ignore: unrelated vars and unrelated
        // prefixes.
        ("PATH".to_string(), "/usr/bin".to_string()),
        ("PLA_UNRELATED_THING".to_string(), "x".to_string()),
    ];
    let cfg = AppConfig::load_str(file, env).expect("env applies");
    assert_eq!(cfg.collector.window, 4096, "env beats file");
    assert_eq!(cfg.collector.heartbeat_ms, 75, "file beats defaults");
    assert_eq!(cfg.ops.listen, "10.0.0.1:9200", "env beats defaults");
}

#[test]
fn unknown_keys_sections_and_bad_values_fail_loudly() {
    assert_eq!(
        AppConfig::parse_str("[ops]\nlisten_addr = \"x\"\n"),
        Err(ConfigError::UnknownKey { section: "ops".to_string(), key: "listen_addr".to_string() })
    );
    assert_eq!(
        AppConfig::parse_str("[metrics]\nenabled = true\n"),
        Err(ConfigError::UnknownSection("metrics".to_string()))
    );
    assert!(matches!(
        AppConfig::parse_str("[collector]\nwindow = banana\n"),
        Err(ConfigError::InvalidValue { .. })
    ));
    assert!(
        matches!(
            AppConfig::parse_str("[collector]\nwindow = 0\n"),
            Err(ConfigError::InvalidValue { .. }),
        ),
        "zero window must fail the minimum bound"
    );
    assert!(matches!(
        AppConfig::parse_str("[ops]\nenabled = yes\n"),
        Err(ConfigError::InvalidValue { .. })
    ));
    assert!(
        matches!(AppConfig::parse_str("key = 1\n"), Err(ConfigError::Syntax { line: 1, .. })),
        "keys outside a section are syntax errors"
    );
    assert!(matches!(
        AppConfig::parse_str("[ops\nenabled = true\n"),
        Err(ConfigError::Syntax { line: 1, .. })
    ));
    // Typos under a recognized env prefix are rejected, not ignored.
    let mut cfg = AppConfig::default();
    assert_eq!(
        cfg.apply_env(vec![("PLA_OPS_LISTN".to_string(), "x".to_string())]),
        Err(ConfigError::UnknownKey { section: "ops".to_string(), key: "listn".to_string() })
    );
}

#[test]
fn every_field_round_trips_through_the_file_grammar() {
    // Give every field a non-default value so a dropped or misspelled
    // key in either direction breaks the equality.
    let mut cfg = AppConfig::default();
    cfg.ops.enabled = false;
    cfg.ops.listen = "weird \"quoted\" \\ host\nname:1".to_string();
    cfg.ops.max_request = 777;
    cfg.collector.dims = 5;
    cfg.collector.window = 9999;
    cfg.collector.max_frame = 123_456;
    cfg.collector.sessions = false;
    cfg.collector.heartbeat_ms = 11;
    cfg.collector.liveness_ms = 22;
    cfg.collector.handshake_ms = 33;
    cfg.collector.session_ttl_ms = 44;
    cfg.collector.redial_initial_ms = 55;
    cfg.collector.redial_cap_ms = 66;
    cfg.collector.token_seed = u64::MAX;
    cfg.store.shards = 7;
    cfg.store.seal_threshold = 88;
    cfg.ingest.shards = 9;
    cfg.ingest.queue_depth = 101;
    cfg.ingest.shard_log = true;

    let text = cfg.to_file_string();
    let back = AppConfig::parse_str(&text).expect("serialized config re-parses");
    assert_eq!(back, cfg, "lossy round-trip through:\n{text}");

    // And the default round-trips too.
    let default_text = AppConfig::default().to_file_string();
    assert_eq!(
        AppConfig::parse_str(&default_text).expect("defaults re-parse"),
        AppConfig::default()
    );

    // The env path accepts the same values the file path does.
    let mut env_cfg = AppConfig::default();
    env_cfg
        .apply_env(vec![("PLA_COLLECTOR_TOKEN_SEED".to_string(), u64::MAX.to_string())])
        .expect("env token_seed");
    assert_eq!(env_cfg.collector.token_seed, u64::MAX);
}

#[test]
fn typed_views_carry_durations() {
    let cfg = AppConfig::parse_str(
        "[collector]\nheartbeat_ms = 50\nliveness_ms = 250\nhandshake_ms = 100\n",
    )
    .expect("valid");
    let sess = cfg.collector.session_config();
    assert_eq!(sess.heartbeat_interval, std::time::Duration::from_millis(50));
    assert_eq!(sess.liveness_timeout, std::time::Duration::from_millis(250));
    assert_eq!(sess.handshake_timeout, std::time::Duration::from_millis(100));
}
