//! Exposition format tests: a golden file pinning the exact rendered
//! text (the wire contract dashboards scrape), plus structural checks
//! that survive reordering-free re-renders.

use pla_ops::{parse_exposition, Registry};

/// Builds the registry the golden file captures: every primitive, label
/// escaping, HELP escaping, multi-series families, and histogram
/// cumulativity in one exposition.
fn golden_registry() -> Registry {
    let mut reg = Registry::new();
    reg.counter("pla_golden_frames_total", "Frames applied.").add(42);
    reg.counter_with(
        "pla_golden_conn_bytes_total",
        "Bytes per connection.",
        &[("conn", "2"), ("site", "edge-a")],
    )
    .add(1024);
    reg.counter_with("pla_golden_conn_bytes_total", "Bytes per connection.", &[("conn", "1")])
        .add(7);
    reg.gauge("pla_golden_attached", "Links currently attached.").set(3.0);
    reg.gauge_with(
        "pla_golden_quoted",
        "Labels with \"quotes\", back\\slashes and\nnewlines must escape.",
        &[("reason", "bad \"token\" \\ line\nbreak")],
    )
    .set(1.0);
    reg.gauge("pla_golden_inf", "Non-finite values render as Prometheus spells them.")
        .set(f64::INFINITY);
    let h = reg.histogram("pla_golden_latency", "Observed latencies.", &[0.5, 1.0, 5.0]);
    for v in [0.1, 0.7, 0.7, 3.0, 100.0] {
        h.observe(v);
    }
    reg
}

#[test]
fn exposition_matches_golden_file() {
    let got = golden_registry().render();
    let want = include_str!("golden_metrics.txt");
    assert_eq!(got, want, "exposition text is a wire contract; update tests/golden_metrics.txt deliberately if the format changes:\n{got}");
}

#[test]
fn golden_file_reparses_losslessly() {
    let samples = parse_exposition(include_str!("golden_metrics.txt")).expect("golden parses");
    let find = |name: &str, labels: &[(&str, &str)]| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .unwrap_or_else(|| panic!("missing {name} {labels:?}"))
    };
    assert_eq!(find("pla_golden_frames_total", &[]).value, 42.0);
    assert_eq!(find("pla_golden_conn_bytes_total", &[("conn", "1")]).value, 7.0);
    assert_eq!(
        find("pla_golden_conn_bytes_total", &[("conn", "2"), ("site", "edge-a")]).value,
        1024.0
    );
    assert_eq!(find("pla_golden_attached", &[]).value, 3.0);
    // The escaped label round-trips back to the raw string.
    assert_eq!(find("pla_golden_quoted", &[("reason", "bad \"token\" \\ line\nbreak")]).value, 1.0);
    assert!(find("pla_golden_inf", &[]).value.is_infinite());
    // Histogram buckets are cumulative and capped by +Inf == count.
    assert_eq!(find("pla_golden_latency_bucket", &[("le", "0.5")]).value, 1.0);
    assert_eq!(find("pla_golden_latency_bucket", &[("le", "1")]).value, 3.0);
    assert_eq!(find("pla_golden_latency_bucket", &[("le", "5")]).value, 4.0);
    assert_eq!(find("pla_golden_latency_bucket", &[("le", "+Inf")]).value, 5.0);
    assert_eq!(find("pla_golden_latency_count", &[]).value, 5.0);
    assert_eq!(find("pla_golden_latency_sum", &[]).value, 0.1 + 0.7 + 0.7 + 3.0 + 100.0);
}

/// Rendering is deterministic: families sorted by name, series by label
/// set, independent of registration order.
#[test]
fn render_is_deterministic() {
    let a = golden_registry().render();
    let b = golden_registry().render();
    assert_eq!(a, b);
    let names: Vec<&str> = a
        .lines()
        .filter_map(|l| l.strip_prefix("# HELP "))
        .filter_map(|l| l.split(' ').next())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "families must render in sorted order");
}

/// Deliberate-update path for the wire contract:
/// `cargo test -p pla-ops --test exposition -- --ignored regenerate_golden`
/// rewrites the golden file from the current renderer.
#[test]
#[ignore]
fn regenerate_golden() {
    std::fs::write("tests/golden_metrics.txt", golden_registry().render()).unwrap();
}
