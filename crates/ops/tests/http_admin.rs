//! Admin API semantics over the async runtime, on every reactor this
//! platform has: the ops server runs as a [`drive_ops`] task while the
//! root task plays HTTP client over a `MemoryLink`, exercising every
//! endpoint's success and failure paths.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use pla_ingest::SegmentStore;
use pla_net::listen::MemoryAcceptor;
use pla_net::runtime::{self, ReactorKind};
use pla_net::{Collector, Link, MemoryLink, NetConfig, SessionConfig};
use pla_ops::http::drive_ops;
use pla_ops::{CollectorAdmin, OpsServer};
use pla_transport::wire::FixedCodec;

fn on_both_reactors(f: impl Fn(ReactorKind)) {
    f(ReactorKind::PollLoop);
    #[cfg(target_os = "linux")]
    f(ReactorKind::Epoll);
}

/// One request/response cycle against the served link, cooperatively
/// yielding so the `drive_ops` task can pump.
async fn fetch(client: &mut MemoryLink, method: &str, path: &str) -> (u16, String) {
    let req = format!("{method} {path} HTTP/1.1\r\nHost: ops\r\n\r\n");
    let mut off = 0;
    while off < req.len() {
        match client.try_write(&req.as_bytes()[off..]) {
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                runtime::sleep(Duration::from_millis(1)).await;
            }
            Err(e) => panic!("request write failed: {e}"),
        }
    }
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match client.try_read(&mut chunk) {
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                runtime::sleep(Duration::from_millis(1)).await;
            }
            Err(e) => panic!("response read failed: {e}"),
        }
        let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) else {
            continue;
        };
        let head = std::str::from_utf8(&raw[..head_end]).expect("utf8 head");
        let len: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from))
            .expect("content-length header")
            .trim()
            .parse()
            .expect("numeric content-length");
        if raw.len() >= head_end + len {
            let status: u16 =
                head.split(' ').nth(1).expect("status code").parse().expect("numeric status");
            let body =
                String::from_utf8(raw[head_end..head_end + len].to_vec()).expect("utf8 body");
            return (status, body);
        }
    }
}

#[test]
fn admin_endpoints_behave_on_every_reactor() {
    on_both_reactors(|kind| {
        let store = Arc::new(SegmentStore::new());
        let collector = Rc::new(RefCell::new(Collector::with_sessions(
            FixedCodec,
            1,
            NetConfig::default(),
            SessionConfig::default(),
            MemoryAcceptor::new(),
            store,
        )));
        let ops_acceptor = MemoryAcceptor::new();
        let connector = ops_acceptor.connector();
        let server =
            Rc::new(RefCell::new(OpsServer::new(ops_acceptor, CollectorAdmin::new(collector))));

        runtime::block_on_with(kind, {
            let server = server.clone();
            async move {
                runtime::spawner().spawn(drive_ops(server));
                let mut client = connector.connect(64 * 1024);

                let (status, body) = fetch(&mut client, "GET", "/healthz").await;
                assert_eq!((status, body.as_str()), (200, "ok\n"));

                let (status, body) = fetch(&mut client, "GET", "/admin/connections").await;
                assert_eq!(status, 200);
                assert!(body.contains("\"connections\""), "connections JSON: {body}");

                // Quarantine/release round-trip, observable in the JSON.
                let (status, body) = fetch(&mut client, "POST", "/admin/quarantine/5").await;
                assert_eq!((status, body.as_str()), (200, "{\"quarantined\":5}"));
                let (_, body) = fetch(&mut client, "GET", "/admin/streams").await;
                assert!(body.contains("\"quarantined\":[5]"), "streams JSON: {body}");
                let (status, body) = fetch(&mut client, "POST", "/admin/release/5").await;
                assert_eq!((status, body.as_str()), (200, "{\"released\":5}"));
                let (_, body) = fetch(&mut client, "GET", "/admin/streams").await;
                assert!(body.contains("\"quarantined\":[]"), "streams JSON: {body}");

                // Failure paths: double release is a conflict, unknown
                // conn drain is a conflict, bad ids are client errors,
                // wrong methods and unknown paths are typed.
                let (status, _) = fetch(&mut client, "POST", "/admin/release/5").await;
                assert_eq!(status, 409, "releasing an unquarantined stream");
                let (status, _) = fetch(&mut client, "POST", "/admin/drain/99").await;
                assert_eq!(status, 409, "draining an unknown connection");
                let (status, _) = fetch(&mut client, "POST", "/admin/quarantine/abc").await;
                assert_eq!(status, 400);
                let (status, _) = fetch(&mut client, "GET", "/admin/drain/1").await;
                assert_eq!(status, 405);
                let (status, _) = fetch(&mut client, "GET", "/nope").await;
                assert_eq!(status, 404);

                // The server's self-metrics counted all of the above —
                // including the scrape itself (increment precedes render).
                let (status, body) = fetch(&mut client, "GET", "/metrics").await;
                assert_eq!(status, 200);
                let requests = body
                    .lines()
                    .find_map(|l| l.strip_prefix("pla_ops_requests_total "))
                    .expect("self counter present")
                    .parse::<f64>()
                    .expect("numeric");
                assert_eq!(requests, 12.0, "one increment per request served:\n{body}");
            }
        });
        assert!(server.borrow().requests_served() >= 12);
    });
}
