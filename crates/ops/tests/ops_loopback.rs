//! The ops-tier acceptance test: a live session-mode collector fan-in —
//! 8 connections × 16 streams over `MemoryAcceptor`, each edge the full
//! production path (`IngestEngine` → `EngineUplink` → `SessionSender`)
//! — observed and administered entirely through the HTTP surface.
//!
//! `GET /metrics` on the live stack must serve valid Prometheus text
//! exposition covering ingest, collector, session, store, query, and
//! ops-self series; `POST /admin/quarantine/{stream}` must isolate
//! exactly that stream while every other stream's store content stays
//! byte-identical to dedicated fault-free point-to-point links.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pla_core::filters::{FilterKind, FilterSpec};
use pla_core::{Segment, Signal};
use pla_ingest::{IngestConfig, IngestEngine, SegmentStore, ShardStats, StreamId};
use pla_net::listen::{MemoryAcceptor, MemoryConnector};
use pla_net::session::SessionStats;
use pla_net::uplink::{EngineUplink, UplinkStatus};
use pla_net::{
    Collector, CollectorStats, ConnId, Link, MemoryLink, MemoryRedial, NetConfig, SessionConfig,
    SessionSender,
};
use pla_ops::collect::{ingest_shard_families, query_families, session_families};
use pla_ops::{parse_exposition, CollectorAdmin, OpsServer, ParsedSample};
use pla_query::{LookupStats, StoreQueryEngine};
use pla_signal::{random_walk, WalkParams};
use pla_transport::wire::FixedCodec;
use pla_transport::{Receiver, Transmitter};

const CONNS: u64 = 8;
const STREAMS_PER_CONN: u64 = 16;
const SAMPLES: usize = 300;
const LINK_CAPACITY: usize = 211;
const TICK: Duration = Duration::from_millis(5);

fn spec_for(id: u64) -> FilterSpec {
    let kind = match id % 3 {
        0 => FilterKind::Swing,
        1 => FilterKind::Slide,
        _ => FilterKind::Cache,
    };
    FilterSpec::new(kind, &[0.5])
}

fn signal_for(id: u64) -> Signal {
    random_walk(WalkParams {
        n: SAMPLES,
        p_decrease: 0.5,
        max_delta: 1.5,
        seed: 0x5E55 ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    })
}

/// The reference: every stream over its own dedicated fault-free
/// point-to-point link.
fn direct_reference() -> BTreeMap<u64, Vec<Segment>> {
    let mut out = BTreeMap::new();
    for id in 0..CONNS * STREAMS_PER_CONN {
        let filter = spec_for(id).build().expect("valid spec");
        let mut tx = Transmitter::new(filter, FixedCodec);
        let mut rx = Receiver::new(FixedCodec, 1);
        for (t, x) in signal_for(id).iter() {
            tx.push(t, x).expect("valid sample");
            rx.consume(tx.take_bytes()).expect("lossless link");
        }
        tx.finish().expect("flush");
        rx.consume(tx.take_bytes()).expect("lossless link");
        out.insert(id, rx.into_segments());
    }
    out
}

fn session_config() -> SessionConfig {
    SessionConfig {
        heartbeat_interval: Duration::from_millis(50),
        liveness_timeout: Duration::from_millis(2000),
        handshake_timeout: Duration::from_millis(500),
        session_ttl: Duration::from_secs(600),
        redial_initial: Duration::from_millis(5),
        redial_cap: Duration::from_millis(40),
        ..SessionConfig::default()
    }
}

struct Edge {
    sess: SessionSender<FixedCodec, MemoryRedial>,
    uplink: EngineUplink,
    finned: bool,
    shard_stats: Vec<ShardStats>,
    quarantined: usize,
    expected_segments: u64,
}

impl Edge {
    fn new(
        conn: u64,
        cfg: NetConfig,
        sess_cfg: SessionConfig,
        connector: MemoryConnector,
        epoch: Instant,
    ) -> Self {
        let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
            shards: 2,
            queue_depth: 128,
            shard_log: false,
        });
        let handle = engine.handle();
        let base = conn * STREAMS_PER_CONN;
        for s in 0..STREAMS_PER_CONN {
            let id = base + s;
            handle.register(StreamId(id), spec_for(id)).expect("register");
            let signal = signal_for(id);
            let samples: Vec<(f64, &[f64])> = signal.iter().collect();
            handle.push_batch(StreamId(id), &samples).expect("feed");
        }
        let report = engine.finish();
        assert_eq!(report.quarantined(), 0);
        Self {
            sess: SessionSender::new(
                FixedCodec,
                1,
                cfg,
                sess_cfg,
                MemoryRedial::new(connector, LINK_CAPACITY),
                epoch,
            ),
            uplink: EngineUplink::new(tap),
            finned: false,
            quarantined: report.quarantined(),
            expected_segments: report.total_segments() as u64,
            shard_stats: report.shards.clone(),
        }
    }

    fn round(&mut self, now: Instant) -> usize {
        let status = self.uplink.pump(self.sess.mux_mut()).expect("uplink");
        if status == UplinkStatus::Drained && !self.finned {
            self.sess.mux_mut().finish_all();
            self.finned = true;
        }
        if let Some(failure) = self.sess.failure() {
            panic!("session must not fail in a fault-free run: {failure}");
        }
        self.sess.pump_at(now)
    }

    fn done(&self) -> bool {
        self.finned && self.sess.mux().is_idle()
    }
}

type Admin = CollectorAdmin<FixedCodec, MemoryAcceptor>;
type Server = OpsServer<MemoryAcceptor, Admin>;

/// Issues one HTTP request against the ops server and reads the full
/// response (pumping the server until `Content-Length` is satisfied).
fn fetch(server: &mut Server, client: &mut MemoryLink, method: &str, path: &str) -> (u16, String) {
    let req = format!("{method} {path} HTTP/1.1\r\nHost: ops\r\n\r\n");
    let mut off = 0;
    while off < req.len() {
        server.pump();
        match client.try_write(&req.as_bytes()[off..]) {
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("request write failed: {e}"),
        }
    }
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    for _ in 0..10_000 {
        server.pump();
        match client.try_read(&mut chunk) {
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("response read failed: {e}"),
        }
        if let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) {
            let head = std::str::from_utf8(&raw[..head_end]).expect("utf8 head");
            let len: usize = head
                .lines()
                .find_map(|l| {
                    l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from)
                })
                .expect("content-length header")
                .trim()
                .parse()
                .expect("numeric content-length");
            if raw.len() >= head_end + len {
                let status: u16 =
                    head.split(' ').nth(1).expect("status code").parse().expect("numeric status");
                let body =
                    String::from_utf8(raw[head_end..head_end + len].to_vec()).expect("utf8 body");
                return (status, body);
            }
        }
    }
    panic!("response never completed");
}

struct FanInResult {
    store: Arc<SegmentStore>,
    stats: CollectorStats,
    metrics: Vec<ParsedSample>,
    metrics_text: String,
    streams_json: String,
}

/// Runs the full fan-in with the ops server alongside, quarantining
/// `quarantine` through the HTTP API before any traffic flows, then
/// scrapes `/metrics` and `/admin/streams` from the finished stack.
fn run_fanin(quarantine: &[u64]) -> FanInResult {
    let cfg = NetConfig { window: 512, max_frame: 1 << 20 };
    let sess_cfg = session_config();
    let store = Arc::new(SegmentStore::new());
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let collector = Rc::new(RefCell::new(Collector::with_sessions(
        FixedCodec,
        1,
        cfg,
        sess_cfg,
        acceptor,
        store.clone(),
    )));

    let ops_acceptor = MemoryAcceptor::new();
    let ops_connector = ops_acceptor.connector();
    let mut server = OpsServer::new(ops_acceptor, Admin::new(collector.clone()));
    let mut ops_client = ops_connector.connect(1 << 20);

    for stream in quarantine {
        let (status, body) =
            fetch(&mut server, &mut ops_client, "POST", &format!("/admin/quarantine/{stream}"));
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, format!("{{\"quarantined\":{stream}}}"));
    }

    let epoch = Instant::now();
    let mut edges: Vec<Edge> =
        (0..CONNS).map(|c| Edge::new(c, cfg, sess_cfg, connector.clone(), epoch)).collect();

    // Dial before the first collector round so accept order follows
    // edge order: edge c is conn c+1.
    let mut now = epoch;
    for edge in &mut edges {
        edge.round(now);
    }

    let mut stalled = 0;
    loop {
        now += TICK;
        let mut moved = collector.borrow_mut().pump_at(now).expect("fault-free run");
        for edge in &mut edges {
            moved += edge.round(now);
        }
        moved += server.pump();
        let coll = collector.borrow();
        if edges.iter().all(|e| e.done()) && (1..=CONNS).all(|c| coll.conn_complete(ConnId(c))) {
            break;
        }
        drop(coll);
        stalled = if moved == 0 { stalled + 1 } else { 0 };
        assert!(stalled < 256, "fan-in deadlocked");
    }

    // The transfer is complete: register the remaining scrape sources
    // (aggregated ingest shard stats, sender-side session stats, query
    // counters driven by real lookups) and take the exposition.
    let mut shard_totals = vec![ShardStats::default(); 2];
    let mut quarantined_streams = 0;
    for edge in &edges {
        quarantined_streams += edge.quarantined;
        for (total, s) in shard_totals.iter_mut().zip(&edge.shard_stats) {
            total.ops += s.ops;
            total.samples += s.samples;
            total.segments += s.segments;
            total.backpressure += s.backpressure;
            total.unknown_stream_drops += s.unknown_stream_drops;
            total.duplicate_registers += s.duplicate_registers;
            total.streams += s.streams;
        }
    }
    let sessions: Vec<SessionStats> = edges.iter().map(|e| e.sess.stats()).collect();
    server.handler_mut().add_source(move |out: &mut Vec<pla_ops::MetricFamily>| {
        ingest_shard_families(&shard_totals, quarantined_streams, out);
        for (i, s) in sessions.iter().enumerate() {
            session_families(&i.to_string(), s, out);
        }
    });

    let engine = StoreQueryEngine::new(store.snapshot());
    let mut lookups = 0u64;
    let mut comparisons = LookupStats::default();
    for id in engine.streams() {
        let view = engine.stream(id).expect("listed stream");
        if let Some((lo, hi)) = view.span() {
            let (_, st) = engine.point_with_stats(id, (lo + hi) / 2.0, 0).expect("covered");
            lookups += 1;
            comparisons.comparisons += st.comparisons;
        }
    }
    server.handler_mut().add_source(move |out: &mut Vec<pla_ops::MetricFamily>| {
        query_families(lookups, &comparisons, out);
    });

    let (status, metrics_text) = fetch(&mut server, &mut ops_client, "GET", "/metrics");
    assert_eq!(status, 200);
    let metrics = parse_exposition(&metrics_text).expect("exposition must parse");
    let (status, streams_json) = fetch(&mut server, &mut ops_client, "GET", "/admin/streams");
    assert_eq!(status, 200);
    let stats = collector.borrow().stats();
    let tapped: u64 = edges.iter().map(|e| e.expected_segments).sum();
    assert_eq!(
        stats.segments + stats.shed_segments,
        tapped,
        "every segment the engines emitted was either published or shed"
    );
    FanInResult { store, stats, metrics, metrics_text, streams_json }
}

fn sample_value<'a>(samples: &'a [ParsedSample], name: &str) -> Option<&'a ParsedSample> {
    samples.iter().find(|s| s.name == name)
}

#[test]
fn live_metrics_cover_every_subsystem() {
    let reference = direct_reference();
    let expected_total: u64 = reference.values().map(|v| v.len() as u64).sum();
    let result = run_fanin(&[]);

    // Store ground truth first: the fan-in itself must be lossless.
    let snap = result.store.snapshot();
    assert_eq!(snap.streams.len(), (CONNS * STREAMS_PER_CONN) as usize);
    assert_eq!(snap.total_segments, expected_total);
    for (id, want) in &reference {
        assert_eq!(snap.streams[&StreamId(*id)].to_vec(), *want, "stream {id}");
    }

    // Every subsystem must be represented in the exposition.
    let m = &result.metrics;
    let collector_conns = sample_value(m, "pla_collector_connections").expect("collector series");
    assert_eq!(collector_conns.value, CONNS as f64);
    let segments = sample_value(m, "pla_collector_segments_total").expect("collector series");
    assert_eq!(segments.value, expected_total as f64);
    let store_total = sample_value(m, "pla_store_segments_total").expect("store series");
    assert_eq!(store_total.value, expected_total as f64);
    assert!(
        m.iter().filter(|s| s.name == "pla_store_source_segments_total").count() == CONNS as usize,
        "one watermark series per source connection"
    );
    let ingest_samples: f64 =
        m.iter().filter(|s| s.name == "pla_ingest_samples_total").map(|s| s.value).sum();
    assert_eq!(ingest_samples, (CONNS * STREAMS_PER_CONN) as f64 * SAMPLES as f64);
    for session_series in [
        "pla_session_heartbeats_echoed_total",
        "pla_session_resumes_total",
        "pla_session_dials_total",
        "pla_session_established_total",
        "pla_session_heartbeats_sent_total",
    ] {
        assert!(
            m.iter().any(|s| s.name == session_series),
            "missing session series {session_series} in:\n{}",
            result.metrics_text
        );
    }
    let dials: f64 =
        m.iter().filter(|s| s.name == "pla_session_dials_total").map(|s| s.value).sum();
    assert_eq!(dials, CONNS as f64, "each edge dialed exactly once in a fault-free run");
    let lookups = sample_value(m, "pla_query_lookups_total").expect("query series");
    assert_eq!(lookups.value, (CONNS * STREAMS_PER_CONN) as f64);
    assert!(
        sample_value(m, "pla_query_comparisons_total").expect("query series").value > 0.0,
        "lookups must have spent comparisons"
    );
    // Per-connection series carry conn labels; ops self-metrics carry
    // histogram machinery (cumulativity is pinned by the unit suite).
    assert_eq!(m.iter().filter(|s| s.name == "pla_conn_published_total").count(), CONNS as usize);
    assert!(sample_value(m, "pla_ops_requests_total").expect("ops series").value >= 1.0);
    assert!(
        m.iter().any(|s| s.name == "pla_ops_response_bytes_bucket"),
        "histogram series must be exposed"
    );

    // Nothing was quarantined or shed.
    assert_eq!(sample_value(m, "pla_collector_shed_segments_total").unwrap().value, 0.0);
    assert_eq!(result.stats.shed_segments, 0);
    assert!(result.streams_json.contains("\"quarantined\":[]"));
}

#[test]
fn quarantining_one_stream_leaves_every_other_byte_identical() {
    const VICTIM: u64 = 37; // conn 3's stream set (32..48), mid-pack.
    let reference = direct_reference();
    let result = run_fanin(&[VICTIM]);

    let snap = result.store.snapshot();
    assert!(
        !snap.streams.contains_key(&StreamId(VICTIM)),
        "a stream quarantined before traffic must never reach the store"
    );
    assert_eq!(snap.streams.len(), (CONNS * STREAMS_PER_CONN) as usize - 1);
    for (id, want) in &reference {
        if *id == VICTIM {
            continue;
        }
        assert_eq!(
            snap.streams[&StreamId(*id)].to_vec(),
            *want,
            "stream {id} must stay byte-identical to its dedicated link"
        );
    }

    // The shed traffic is observable, attributed, and reported over the
    // admin API.
    assert_eq!(result.stats.shed_segments, reference[&VICTIM].len() as u64);
    assert_eq!(result.stats.quarantined_streams, vec![VICTIM]);
    let shed = sample_value(&result.metrics, "pla_collector_shed_segments_total").unwrap();
    assert_eq!(shed.value, reference[&VICTIM].len() as f64);
    assert!(result.streams_json.contains(&format!("\"quarantined\":[{VICTIM}]")));

    // Every sender still completed: acks are independent of publishing,
    // so quarantine sheds data without stalling the connection.
    assert_eq!(result.stats.attached, CONNS as usize);
}
