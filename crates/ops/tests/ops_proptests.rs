//! Property tests: whatever a registry renders, [`parse_exposition`]
//! reads back losslessly — names, label sets (including every escaped
//! character), and values. The renderer and parser are independent
//! implementations, so round-tripping pins both.

use pla_ops::{parse_exposition, Registry};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Label values drawn from a palette that forces every escape path:
/// quotes, backslashes, newlines, plus ordinary text.
fn label_value() -> impl Strategy<Value = String> {
    const PALETTE: &[char] = &['a', 'Z', '9', '_', ' ', '"', '\\', '\n', '{', '}', ',', '='];
    proptest::collection::vec(any::<u8>(), 1..12)
        .prop_map(|bytes| bytes.iter().map(|b| PALETTE[*b as usize % PALETTE.len()]).collect())
}

/// Valid metric-name suffixes: `[a-z0-9_]`, non-empty.
fn name_suffix() -> impl Strategy<Value = String> {
    const PALETTE: &[char] =
        &['a', 'b', 'c', 'q', 'z', '0', '7', '_', 'm', 'e', 't', 'r', 'i', 'x'];
    proptest::collection::vec(any::<u8>(), 1..10)
        .prop_map(|bytes| bytes.iter().map(|b| PALETTE[*b as usize % PALETTE.len()]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn labeled_counters_round_trip(
        suffix in name_suffix(),
        entries in proptest::collection::vec((label_value(), any::<u32>()), 1..8),
    ) {
        let name = format!("pla_prop_{suffix}_total");
        let mut reg = Registry::new();
        // Distinct label values only: same-label entries share a counter.
        let mut by_label = std::collections::BTreeMap::new();
        for (label, add) in &entries {
            *by_label.entry(label.clone()).or_insert(0u64) += u64::from(*add);
        }
        for (label, total) in &by_label {
            reg.counter_with(&name, "Prop counter.", &[("case", label)]).add(*total);
        }
        let text = reg.render();
        let samples = parse_exposition(&text)
            .map_err(|e| TestCaseError::fail(format!("render must re-parse: {e}\n{text}")))?;
        for (label, total) in &by_label {
            let got = samples
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels.iter().any(|(k, v)| k == "case" && v == label)
                })
                .ok_or_else(|| TestCaseError::fail(format!("lost series {label:?}\n{text}")))?;
            prop_assert_eq!(got.value, *total as f64);
        }
    }

    #[test]
    fn gauges_round_trip_finite_values(
        suffix in name_suffix(),
        raw in any::<i64>(),
    ) {
        let name = format!("pla_prop_{suffix}");
        // i64 → f64 keeps the value finite; exposition must preserve it
        // through Display precision.
        let value = raw as f64;
        let mut reg = Registry::new();
        reg.gauge(&name, "Prop gauge.").set(value);
        let text = reg.render();
        let samples = parse_exposition(&text)
            .map_err(|e| TestCaseError::fail(format!("render must re-parse: {e}\n{text}")))?;
        let got = samples.iter().find(|s| s.name == name)
            .ok_or_else(|| TestCaseError::fail("lost gauge"))?;
        prop_assert_eq!(got.value, value);
    }

    #[test]
    fn histograms_round_trip_cumulative_buckets(
        suffix in name_suffix(),
        observations in proptest::collection::vec(any::<u16>(), 1..32),
    ) {
        let name = format!("pla_prop_{suffix}");
        let bounds = [100.0, 1000.0, 30000.0];
        let mut reg = Registry::new();
        let h = reg.histogram(&name, "Prop histogram.", &bounds);
        for o in &observations {
            h.observe(f64::from(*o));
        }
        let text = reg.render();
        let samples = parse_exposition(&text)
            .map_err(|e| TestCaseError::fail(format!("render must re-parse: {e}\n{text}")))?;
        let bucket = |le: &str| -> Result<f64, TestCaseError> {
            samples
                .iter()
                .find(|s| {
                    s.name == format!("{name}_bucket")
                        && s.labels.iter().any(|(k, v)| k == "le" && v == le)
                })
                .map(|s| s.value)
                .ok_or_else(|| TestCaseError::fail(format!("missing bucket le={le}\n{text}")))
        };
        let mut want_cumulative = 0u64;
        for bound in bounds {
            want_cumulative =
                observations.iter().filter(|o| f64::from(**o) <= bound).count() as u64;
            // Display for 100/1000/30000 has no fractional part.
            prop_assert_eq!(bucket(&format!("{bound}"))?, want_cumulative as f64);
        }
        prop_assert!(bucket("+Inf")? >= want_cumulative as f64);
        prop_assert_eq!(bucket("+Inf")?, observations.len() as f64);
        let count = samples.iter().find(|s| s.name == format!("{name}_count"))
            .ok_or_else(|| TestCaseError::fail("missing _count"))?;
        prop_assert_eq!(count.value, observations.len() as f64);
        let sum = samples.iter().find(|s| s.name == format!("{name}_sum"))
            .ok_or_else(|| TestCaseError::fail("missing _sum"))?;
        let want_sum: f64 = observations.iter().map(|o| f64::from(*o)).sum();
        prop_assert_eq!(sum.value, want_sum);
    }
}
