//! The remote reader: a sans-I/O query client with request pipelining,
//! per-request timeouts, automatic redial, and an epoch-validated
//! result cache.
//!
//! Mirrors the sender session machine's discipline
//! ([`SessionSender`](pla_net::SessionSender)): all time enters through
//! the explicit `now` of [`pump_at`](QueryClient::pump_at), so every
//! timeout/redial path is deterministic under test; all staging goes
//! through [`Outbox::stage`] one whole frame per call (torn-write
//! safety); and losing the link is an *event, not an error* — queries
//! are idempotent reads, so the client simply redials and re-issues
//! everything unanswered.
//!
//! Correlation: every request carries a client-minted `req_id`; the
//! server echoes it on the response. Responses may arrive out of order
//! (pipelining) or more than once (a redial can re-issue a request the
//! server already answered on the dead link — or answered *twice* when
//! a fault duplicates frames); the first answer per `req_id` wins and
//! later ones are counted as [`dup_drops`](ClientStats::dup_drops),
//! exactly the sequence-number discipline of the ingest plane.
//!
//! A request completes in one of exactly three ways: a decoded
//! [`QueryResult`], a typed [`ClientError::Timeout`] after
//! `max_attempts` per-request deadlines lapsed, or a typed
//! [`ClientError::Refused`]/[`ClientError::Wire`] when the server
//! refuses the protocol version or the response bytes are garbage.

use std::collections::BTreeMap;
use std::io;
use std::time::{Duration, Instant};

use bytes::BytesMut;

use pla_ingest::{shard_of, StreamId};
use pla_net::frame::{encode, FrameDecoder, NetFrame, Outbox, PROTOCOL_VERSION};
use pla_net::{Link, NetConfig, Redial};

use crate::wire::{Query, QueryResult, WireError};

const READ_CHUNK: usize = 4096;

/// Client knobs. Defaults suit tests and LAN deployments.
#[derive(Debug, Clone, Copy)]
pub struct QueryClientConfig {
    /// Frame-size bound shared with [`NetConfig`].
    pub net: NetConfig,
    /// Per-request deadline: a request unanswered this long is either
    /// re-issued over a fresh link or — after
    /// [`max_attempts`](Self::max_attempts) — completed as
    /// [`ClientError::Timeout`].
    pub request_timeout: Duration,
    /// Attempts (initial send plus re-issues) before a request times
    /// out for good.
    pub max_attempts: u32,
    /// First-retry backoff after a *failed dial attempt*.
    pub redial_initial: Duration,
    /// Backoff ceiling (doubles up to here).
    pub redial_cap: Duration,
}

impl Default for QueryClientConfig {
    fn default() -> Self {
        Self {
            net: NetConfig::default(),
            request_timeout: Duration::from_millis(500),
            max_attempts: 8,
            redial_initial: Duration::from_millis(10),
            redial_cap: Duration::from_secs(2),
        }
    }
}

/// Client-side completion failures (the *wire* failing, never the
/// engine: an engine refusal arrives as a successful
/// [`QueryResult::Err`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every attempt's deadline lapsed without an answer.
    Timeout {
        /// Send attempts made.
        attempts: u32,
    },
    /// The server refused the handshake (version mismatch).
    Refused {
        /// The server's advertised protocol version.
        server_version: u16,
    },
    /// The response body did not decode — the peers disagree about the
    /// codec.
    Wire(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout { attempts } => write!(f, "request timed out after {attempts} attempts"),
            Self::Refused { server_version } => {
                write!(f, "server (version {server_version}) refused version {PROTOCOL_VERSION}")
            }
            Self::Wire(e) => write!(f, "undecodable response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A completed request's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to a [`Query`].
    Result(QueryResult),
    /// Answer to an epochs probe.
    Epochs(Vec<u64>),
}

/// How one request finished.
pub type Outcome = Result<Response, ClientError>;

/// Client counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Dial attempts (including failures).
    pub dials: u64,
    /// Handshakes completed.
    pub established: u64,
    /// Requests re-issued over a fresh link.
    pub retransmits: u64,
    /// Responses dropped because their request was already answered.
    pub dup_drops: u64,
    /// Requests completed as [`ClientError::Timeout`].
    pub timeouts: u64,
    /// Cache hits served without touching the wire.
    pub cache_hits: u64,
    /// Cache entries invalidated by moved epochs.
    pub cache_invalidations: u64,
}

#[derive(Debug, Clone)]
enum PendingKind {
    Query(Query),
    Epochs,
}

#[derive(Debug)]
struct PendingReq {
    kind: PendingKind,
    deadline: Instant,
    attempts: u32,
    staged: bool,
}

struct CacheEntry {
    /// Store shard the answer depends on; `None` depends on the whole
    /// store (e.g. [`Query::Streams`]).
    shard: Option<usize>,
    result: QueryResult,
}

/// Epoch-validated result cache: an answer stays servable locally until
/// the store shard it came from moves its epoch. The client probes with
/// [`QueryClient::probe_epochs`]; each [`NetFrame::EpochsResp`]
/// revalidates, dropping exactly the entries whose shard advanced.
///
/// Epochs are monotone under a fixed server; observing any *decrease*
/// (or a shard-count change) means the server was replaced, and the
/// whole cache drops.
#[derive(Default)]
pub struct SnapshotCache {
    /// Last validated epochs; empty until the first probe answers.
    epochs: Box<[u64]>,
    entries: BTreeMap<Vec<u8>, CacheEntry>,
}

impl SnapshotCache {
    /// Whether the cache has been validated at least once (entries are
    /// only stored/served under a known epoch vector).
    pub fn validated(&self) -> bool {
        !self.epochs.is_empty()
    }

    /// The last validated epochs (empty before the first probe).
    pub fn epochs(&self) -> &[u64] {
        &self.epochs
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies a fresh epoch vector: drops entries on moved shards (and
    /// whole-store entries if anything moved). Returns how many entries
    /// were invalidated.
    pub fn revalidate(&mut self, new: &[u64]) -> usize {
        let before = self.entries.len();
        if self.epochs.len() != new.len() || self.epochs.iter().zip(new).any(|(old, new)| new < old)
        {
            // Shard-count change or an epoch running backwards: not the
            // store we validated against. Drop everything.
            if self.validated() {
                self.entries.clear();
            }
        } else {
            let moved: Vec<usize> = self
                .epochs
                .iter()
                .zip(new)
                .enumerate()
                .filter(|(_, (old, new))| new != old)
                .map(|(i, _)| i)
                .collect();
            if !moved.is_empty() {
                self.entries.retain(|_, e| match e.shard {
                    Some(s) => !moved.contains(&s),
                    None => false,
                });
            }
        }
        self.epochs = new.into();
        before - self.entries.len()
    }

    /// Cached answer for `query`, if still valid.
    pub fn get(&self, query: &Query) -> Option<&QueryResult> {
        if !self.validated() {
            return None;
        }
        self.entries.get(query.encode().as_ref()).map(|e| &e.result)
    }

    /// Stores an answer under the current epoch vector (no-op before
    /// the first validation — there is nothing to validate against).
    pub fn insert(&mut self, query: &Query, result: QueryResult) {
        if !self.validated() {
            return;
        }
        let shard = query_stream(query).map(|s| shard_of(StreamId(s), self.epochs.len()));
        self.entries.insert(query.encode().to_vec(), CacheEntry { shard, result });
    }
}

/// The stream a query depends on, if it names exactly one.
fn query_stream(q: &Query) -> Option<u64> {
    match q {
        Query::Point { stream, .. }
        | Query::PointWithStats { stream, .. }
        | Query::PointBounded { stream, .. }
        | Query::Range { stream, .. }
        | Query::RangeBounded { stream, .. }
        | Query::CountAbove { stream, .. }
        | Query::Span { stream } => Some(*stream),
        Query::Streams => None,
    }
}

/// Whether a cached request was served locally or went to the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Cached {
    /// Served from the epoch-validated cache.
    Hit(QueryResult),
    /// Submitted remotely; the answer arrives under this `req_id`.
    Sent(u64),
}

/// The remote query client. See the module docs.
pub struct QueryClient<R: Redial> {
    redial: R,
    link: Option<R::Link>,
    config: QueryClientConfig,
    decoder: FrameDecoder,
    outbox: Outbox,
    next_req_id: u64,
    pending: BTreeMap<u64, PendingReq>,
    done: BTreeMap<u64, Outcome>,
    /// Token from the last `HelloAck`, offered on the next dial.
    token: u64,
    backoff: Duration,
    /// Earliest next dial attempt; `None` = dial on the next pump.
    next_dial_at: Option<Instant>,
    fatal: Option<ClientError>,
    stats: ClientStats,
    cache: SnapshotCache,
}

impl<R: Redial> QueryClient<R> {
    /// New client dialing through `redial`.
    pub fn new(redial: R, config: QueryClientConfig) -> Self {
        Self {
            redial,
            link: None,
            decoder: FrameDecoder::new(config.net.max_frame),
            outbox: Outbox::default(),
            config,
            next_req_id: 0,
            pending: BTreeMap::new(),
            done: BTreeMap::new(),
            token: 0,
            backoff: config.redial_initial,
            next_dial_at: None,
            fatal: None,
            stats: ClientStats::default(),
            cache: SnapshotCache::default(),
        }
    }

    /// Client counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The result cache (inspection and direct seeding in tests).
    pub fn cache(&self) -> &SnapshotCache {
        &self.cache
    }

    /// The redial policy — chaos tests reach through it to sever or
    /// wedge the active link mid-flight.
    pub fn redial(&self) -> &R {
        &self.redial
    }

    /// A terminal failure (handshake refusal), if one happened. Once
    /// set, the client stops dialing; pending requests complete with
    /// the same error.
    pub fn failure(&self) -> Option<&ClientError> {
        self.fatal.as_ref()
    }

    /// Requests submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is in flight and nothing staged.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.outbox.is_empty()
    }

    fn mint(&mut self, kind: PendingKind, now: Instant) -> u64 {
        self.next_req_id += 1;
        let id = self.next_req_id;
        self.pending.insert(
            id,
            PendingReq {
                kind,
                deadline: now + self.config.request_timeout,
                attempts: 0,
                staged: false,
            },
        );
        id
    }

    /// Submits one query; the answer arrives under the returned
    /// `req_id` after enough [`pump_at`](Self::pump_at) rounds.
    pub fn submit(&mut self, query: Query, now: Instant) -> u64 {
        self.mint(PendingKind::Query(query), now)
    }

    /// Submits an epochs probe: the response revalidates the cache and
    /// completes as [`Response::Epochs`].
    pub fn probe_epochs(&mut self, now: Instant) -> u64 {
        self.mint(PendingKind::Epochs, now)
    }

    /// Cache-aware submit: serves from the epoch-validated cache when
    /// possible, otherwise goes remote (and caches the eventual answer).
    pub fn submit_cached(&mut self, query: Query, now: Instant) -> Cached {
        if let Some(hit) = self.cache.get(&query) {
            self.stats.cache_hits += 1;
            return Cached::Hit(hit.clone());
        }
        Cached::Sent(self.submit(query, now))
    }

    /// Removes and returns one completed request's outcome.
    pub fn take_outcome(&mut self, req_id: u64) -> Option<Outcome> {
        self.done.remove(&req_id)
    }

    /// Drains every completed request, ascending by `req_id`.
    pub fn take_completed(&mut self) -> Vec<(u64, Outcome)> {
        std::mem::take(&mut self.done).into_iter().collect()
    }

    /// One deterministic round at `now`: dial/handshake as needed,
    /// stage and flush unsent requests, apply every complete inbound
    /// frame, and enforce per-request deadlines. Returns bytes moved.
    pub fn pump_at(&mut self, now: Instant) -> usize {
        if self.fatal.is_some() {
            return 0;
        }
        if self.link.is_none() && !self.pending.is_empty() {
            self.try_dial(now);
        }
        let Some(mut link) = self.link.take() else {
            self.check_deadlines(now);
            return 0;
        };
        let mut moved = 0;
        let mut lost = false;

        // Stage unsent requests (pipelined behind the Hello already
        // staged at dial time).
        let ids: Vec<u64> =
            self.pending.iter().filter(|(_, p)| !p.staged).map(|(&id, _)| id).collect();
        for id in ids {
            let p = self.pending.get_mut(&id).expect("id just listed");
            p.staged = true;
            p.attempts += 1;
            p.deadline = now + self.config.request_timeout;
            if p.attempts > 1 {
                self.stats.retransmits += 1;
            }
            let frame = match &p.kind {
                PendingKind::Query(q) => NetFrame::QueryReq { req_id: id, body: q.encode() },
                PendingKind::Epochs => NetFrame::EpochsReq { req_id: id },
            };
            let mut buf = BytesMut::new();
            encode(&frame, &mut buf);
            self.outbox.stage(&buf);
        }

        // Flush.
        while !self.outbox.is_empty() {
            match link.try_write(self.outbox.as_bytes()) {
                Ok(0) => break,
                Ok(n) => {
                    self.outbox.consume(n);
                    moved += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    lost = true;
                    break;
                }
            }
        }

        // Read.
        let mut chunk = [0u8; READ_CHUNK];
        while !lost {
            match link.try_read(&mut chunk) {
                Ok(0) => {
                    lost = true;
                }
                Ok(n) => {
                    self.decoder.extend(&chunk[..n]);
                    moved += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    lost = true;
                }
            }
        }

        // Apply.
        while self.fatal.is_none() {
            match self.decoder.try_next() {
                Ok(Some(frame)) => {
                    if !self.on_frame(frame) {
                        lost = true;
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    lost = true;
                    break;
                }
            }
        }

        if let Some(fatal) = self.fatal.clone() {
            // Refused: complete everything with the terminal error.
            let ids: Vec<u64> = self.pending.keys().copied().collect();
            for id in ids {
                self.pending.remove(&id);
                self.done.insert(id, Err(fatal.clone()));
            }
            return moved;
        }

        if lost {
            self.on_disconnect(now);
        } else {
            self.link = Some(link);
        }
        self.check_deadlines(now);
        moved
    }

    /// Applies one inbound frame. Returns `false` when the connection
    /// must drop (protocol violation).
    fn on_frame(&mut self, frame: NetFrame) -> bool {
        match frame {
            NetFrame::HelloAck { version, token: 0, .. } => {
                self.fatal = Some(ClientError::Refused { server_version: version });
            }
            NetFrame::HelloAck { token, .. } => {
                self.token = token;
                self.stats.established += 1;
            }
            NetFrame::QueryResp { req_id, body } => {
                let Some(p) = self.pending.remove(&req_id) else {
                    self.stats.dup_drops += 1;
                    return true;
                };
                let outcome = match QueryResult::decode(&body) {
                    Ok(result) => {
                        if let PendingKind::Query(q) = &p.kind {
                            self.cache.insert(q, result.clone());
                        }
                        Ok(Response::Result(result))
                    }
                    Err(e) => Err(ClientError::Wire(e)),
                };
                self.done.insert(req_id, outcome);
            }
            NetFrame::EpochsResp { req_id, epochs } => {
                if self.pending.remove(&req_id).is_none() {
                    self.stats.dup_drops += 1;
                    return true;
                }
                self.stats.cache_invalidations += self.cache.revalidate(&epochs) as u64;
                self.done.insert(req_id, Ok(Response::Epochs(epochs)));
            }
            NetFrame::Heartbeat { .. } => {}
            // Data/Ack/Credit/Fin/Hello/QueryReq/EpochsReq have no
            // business arriving at a query client.
            _ => return false,
        }
        true
    }

    fn try_dial(&mut self, now: Instant) {
        if self.next_dial_at.is_some_and(|t| now < t) {
            return;
        }
        self.stats.dials += 1;
        match self.redial.redial() {
            Ok(link) => {
                self.link = Some(link);
                self.next_dial_at = None;
                self.backoff = self.config.redial_initial;
                self.decoder.reset();
                self.outbox.clear();
                let mut buf = BytesMut::new();
                encode(&NetFrame::Hello { version: PROTOCOL_VERSION, token: self.token }, &mut buf);
                self.outbox.stage(&buf);
                // Everything unanswered goes out again on this link.
                for p in self.pending.values_mut() {
                    p.staged = false;
                }
            }
            Err(_) => {
                self.next_dial_at = Some(now + self.backoff);
                self.backoff = (self.backoff * 2).min(self.config.redial_cap);
            }
        }
    }

    fn on_disconnect(&mut self, now: Instant) {
        self.link = None;
        self.decoder.reset();
        self.outbox.clear();
        // Nothing pending is on a wire anymore.
        for p in self.pending.values_mut() {
            p.staged = false;
        }
        // Dial again immediately on the next pump (backoff applies only
        // to *failed* dial attempts).
        self.next_dial_at = Some(now);
    }

    /// Times out or re-issues requests whose deadline lapsed. A lapsed
    /// deadline with attempts to spare means the link is suspect
    /// (wedged or lossy): drop it so the next pump redials and
    /// re-issues everything — reads are idempotent, so re-asking is
    /// always safe.
    fn check_deadlines(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.attempts > 0 && now >= p.deadline)
            .map(|(&id, _)| id)
            .collect();
        if expired.is_empty() {
            return;
        }
        let mut suspect = false;
        for id in expired {
            let p = self.pending.get_mut(&id).expect("id just listed");
            if p.attempts >= self.config.max_attempts {
                let attempts = p.attempts;
                self.pending.remove(&id);
                self.done.insert(id, Err(ClientError::Timeout { attempts }));
                self.stats.timeouts += 1;
            } else if p.staged {
                suspect = true;
            } else {
                // Unreachable server (dials failing): each elapsed
                // deadline burns one attempt so the request still
                // converges on a typed timeout.
                p.attempts += 1;
                p.deadline = now + self.config.request_timeout;
            }
        }
        if suspect && self.link.is_some() {
            self.on_disconnect(now);
        }
    }
}
