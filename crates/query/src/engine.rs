//! The query engine: evaluate-once, bound-everything.

use pla_core::{GapPolicy, Polyline};

use crate::types::{Bounded, BoundedCount, Crossing, CrossingKind, QueryError, SamplingGrid};

/// Answers queries over one compressed stream. See the crate docs.
pub struct QueryEngine {
    polyline: Polyline,
    eps: Vec<f64>,
}

impl QueryEngine {
    /// Wraps a reconstruction and the precision widths it was produced
    /// under.
    pub fn new(polyline: Polyline, eps: &[f64]) -> Result<Self, QueryError> {
        if !polyline.segments().is_empty() && eps.len() != polyline.dims() {
            return Err(QueryError::DimensionMismatch {
                expected: polyline.dims(),
                got: eps.len(),
            });
        }
        for &e in eps {
            if !(e.is_finite() && e > 0.0) {
                return Err(QueryError::InvalidEpsilon(e));
            }
        }
        Ok(Self { polyline, eps: eps.to_vec() })
    }

    /// The wrapped reconstruction.
    pub fn polyline(&self) -> &Polyline {
        &self.polyline
    }

    fn check_dim(&self, dim: usize) -> Result<f64, QueryError> {
        self.eps.get(dim).copied().ok_or(QueryError::BadDimension(dim))
    }

    /// PLA values at the grid times; errors on the first uncovered time.
    /// Queries are answered only within the approximation's covered span
    /// (gaps between disconnected segments interpolate).
    fn series(&self, times: &[f64], dim: usize) -> Result<Vec<f64>, QueryError> {
        if times.is_empty() {
            return Err(QueryError::EmptyGrid);
        }
        let (span_lo, span_hi) =
            self.polyline.span().ok_or(QueryError::Uncovered { t: times[0] })?;
        times
            .iter()
            .map(|&t| {
                if t < span_lo || t > span_hi {
                    return Err(QueryError::Uncovered { t });
                }
                self.polyline
                    .eval(t, dim, GapPolicy::Interpolate)
                    .or_else(|| self.polyline.eval(t, dim, GapPolicy::Hold))
                    .ok_or(QueryError::Uncovered { t })
            })
            .collect()
    }

    /// Mean of the samples at `times`, with ±ε bounds.
    pub fn mean(&self, times: &[f64], dim: usize) -> Result<Bounded, QueryError> {
        let eps = self.check_dim(dim)?;
        let series = self.series(times, dim)?;
        let value = series.iter().sum::<f64>() / series.len() as f64;
        Ok(Bounded { value, lo: value - eps, hi: value + eps })
    }

    /// Minimum of the samples at `times`, with ±ε bounds.
    pub fn min(&self, times: &[f64], dim: usize) -> Result<Bounded, QueryError> {
        let eps = self.check_dim(dim)?;
        let series = self.series(times, dim)?;
        let value = series.iter().copied().fold(f64::INFINITY, f64::min);
        Ok(Bounded { value, lo: value - eps, hi: value + eps })
    }

    /// Maximum of the samples at `times`, with ±ε bounds.
    pub fn max(&self, times: &[f64], dim: usize) -> Result<Bounded, QueryError> {
        let eps = self.check_dim(dim)?;
        let series = self.series(times, dim)?;
        let value = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(Bounded { value, lo: value - eps, hi: value + eps })
    }

    /// Sample count strictly above `threshold`, bounded from both sides:
    /// a sample counts as *definite* when its whole ε-band clears the
    /// threshold, as *possible* when any part of the band does.
    pub fn count_above(
        &self,
        times: &[f64],
        dim: usize,
        threshold: f64,
    ) -> Result<BoundedCount, QueryError> {
        let eps = self.check_dim(dim)?;
        let series = self.series(times, dim)?;
        let definite = series.iter().filter(|&&v| v - eps > threshold).count();
        let possible = series.iter().filter(|&&v| v + eps > threshold).count();
        Ok(BoundedCount { definite, possible })
    }

    /// Threshold-crossing events along the grid, classified by certainty.
    ///
    /// The signal's state at each grid point is *above* (PLA value more
    /// than ε above the threshold), *below* (more than ε below), or
    /// *ambiguous*. A [`CrossingKind::Certain`] event is a transition
    /// between the two certain states; entering/leaving the ambiguity
    /// band reports [`CrossingKind::Possible`].
    pub fn crossings(
        &self,
        times: &[f64],
        dim: usize,
        threshold: f64,
    ) -> Result<Vec<Crossing>, QueryError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Zone {
            Above,
            Below,
            Ambiguous,
        }
        let eps = self.check_dim(dim)?;
        let series = self.series(times, dim)?;
        let zone = |v: f64| {
            if v - eps > threshold {
                Zone::Above
            } else if v + eps < threshold {
                Zone::Below
            } else {
                Zone::Ambiguous
            }
        };
        let mut out = Vec::new();
        let mut prev = zone(series[0]);
        // The most recent *certain* zone; `None` until one is seen. Only
        // a transition between the two certain zones (directly or through
        // the ambiguity band) is a certain crossing — a stream that
        // merely starts ambiguous and then resolves has not crossed.
        let mut last_certain = match prev {
            Zone::Ambiguous => None,
            z => Some(z),
        };
        for (j, &v) in series.iter().enumerate().skip(1) {
            let cur = zone(v);
            if cur == prev {
                continue;
            }
            match (prev, cur) {
                (Zone::Below, Zone::Above) => {
                    out.push(Crossing { t: times[j], rising: true, kind: CrossingKind::Certain })
                }
                (Zone::Above, Zone::Below) => {
                    out.push(Crossing { t: times[j], rising: false, kind: CrossingKind::Certain })
                }
                (entered_from, Zone::Ambiguous) => out.push(Crossing {
                    t: times[j],
                    rising: entered_from == Zone::Below,
                    kind: CrossingKind::Possible,
                }),
                (Zone::Ambiguous, certain) => {
                    if last_certain.is_some_and(|lc| lc != certain) {
                        out.push(Crossing {
                            t: times[j],
                            rising: certain == Zone::Above,
                            kind: CrossingKind::Certain,
                        });
                    }
                }
                // cur == prev was handled by the `continue` above.
                (Zone::Above, Zone::Above) | (Zone::Below, Zone::Below) => unreachable!(),
            }
            if cur != Zone::Ambiguous {
                last_certain = Some(cur);
            }
            prev = cur;
        }
        Ok(out)
    }

    /// Continuous-time integral of the PLA over `[a, b]` with bound
    /// `± ε·(b−a)`: valid for any underlying signal that stays within ε
    /// of the approximation over the window (which holds at sample times
    /// by the filters' guarantee, and in between under the usual
    /// piecewise-linear interpolation reading of the recordings).
    pub fn integral(&self, a: f64, b: f64, dim: usize) -> Result<Bounded, QueryError> {
        let eps = self.check_dim(dim)?;
        if b < a {
            return Err(QueryError::EmptyGrid);
        }
        // Trapezoid over segment pieces clipped to [a, b]; gaps between
        // disconnected segments interpolate (same reading as `eval`).
        let mut total = 0.0;
        let mut cursor = a;
        const STEPS: usize = 1024;
        // Piecewise-exact integration segment by segment would be
        // straightforward but gap handling dominates the code; a fixed
        // fine trapezoid keeps this readable and its discretization error
        // is far below the ε·(b−a) bound we report.
        let h = (b - a) / STEPS as f64;
        let mut prev = self
            .polyline
            .eval(cursor, dim, GapPolicy::Interpolate)
            .or_else(|| self.polyline.eval(cursor, dim, GapPolicy::Hold))
            .ok_or(QueryError::Uncovered { t: cursor })?;
        for _ in 0..STEPS {
            cursor += h;
            let next = self
                .polyline
                .eval(cursor, dim, GapPolicy::Interpolate)
                .or_else(|| self.polyline.eval(cursor, dim, GapPolicy::Hold))
                .ok_or(QueryError::Uncovered { t: cursor })?;
            total += 0.5 * (prev + next) * h;
            prev = next;
        }
        let slack = eps * (b - a);
        Ok(Bounded { value: total, lo: total - slack, hi: total + slack })
    }

    /// Convenience: run a query on a [`SamplingGrid`].
    pub fn mean_on(&self, grid: &SamplingGrid, dim: usize) -> Result<Bounded, QueryError> {
        self.mean(&grid.times(), dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_core::filters::{run_filter, SlideFilter, SwingFilter};
    use pla_core::Signal;

    fn engine_for(signal: &Signal, eps: f64) -> QueryEngine {
        let mut f = SlideFilter::new(&vec![eps; signal.dims()]).unwrap();
        let segs = run_filter(&mut f, signal).unwrap();
        QueryEngine::new(Polyline::new(segs), &vec![eps; signal.dims()]).unwrap()
    }

    fn noisy(n: usize, seed: u64) -> Signal {
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        Signal::from_values(
            &(0..n)
                .map(|_| {
                    x += rnd();
                    x
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn mean_bounds_contain_truth() {
        let signal = noisy(500, 1);
        let eng = engine_for(&signal, 0.5);
        let truth =
            (0..signal.len()).map(|j| signal.value(j, 0)).sum::<f64>() / signal.len() as f64;
        let b = eng.mean(signal.times(), 0).unwrap();
        assert!(b.contains(truth), "truth {truth} outside [{}, {}]", b.lo, b.hi);
        assert!(b.radius() <= 0.5 + 1e-12);
    }

    #[test]
    fn extrema_bounds_contain_truth() {
        let signal = noisy(500, 2);
        let eng = engine_for(&signal, 0.8);
        let t_min = (0..signal.len()).map(|j| signal.value(j, 0)).fold(f64::INFINITY, f64::min);
        let t_max = (0..signal.len()).map(|j| signal.value(j, 0)).fold(f64::NEG_INFINITY, f64::max);
        assert!(eng.min(signal.times(), 0).unwrap().contains(t_min));
        assert!(eng.max(signal.times(), 0).unwrap().contains(t_max));
    }

    #[test]
    fn count_above_brackets_truth() {
        let signal = noisy(400, 3);
        let eng = engine_for(&signal, 0.6);
        let threshold = 0.0;
        let truth = (0..signal.len()).filter(|&j| signal.value(j, 0) > threshold).count();
        let c = eng.count_above(signal.times(), 0, threshold).unwrap();
        assert!(c.contains(truth), "truth {truth} outside [{}, {}]", c.definite, c.possible);
    }

    #[test]
    fn certain_crossings_are_real() {
        // A clean ramp through a threshold: exactly one certain rise.
        let signal =
            Signal::from_values(&(0..100).map(|i| i as f64 * 0.2 - 10.0).collect::<Vec<_>>());
        let eng = engine_for(&signal, 0.3);
        let crossings = eng.crossings(signal.times(), 0, -2.0).unwrap();
        let certain: Vec<_> =
            crossings.iter().filter(|c| c.kind == CrossingKind::Certain).collect();
        assert_eq!(certain.len(), 1);
        assert!(certain[0].rising);
    }

    #[test]
    fn oscillation_inside_band_gives_no_certain_crossings() {
        // Signal oscillates ±0.4 around the threshold with ε = 0.5: every
        // sample is ambiguous, so nothing is certain.
        let signal = Signal::from_values(
            &(0..100).map(|i| if i % 2 == 0 { 0.4 } else { -0.4 }).collect::<Vec<_>>(),
        );
        let eng = engine_for(&signal, 0.5);
        let crossings = eng.crossings(signal.times(), 0, 0.0).unwrap();
        assert!(crossings.iter().all(|c| c.kind == CrossingKind::Possible));
    }

    #[test]
    fn integral_bounds_contain_trapezoid_truth() {
        let signal = noisy(300, 4);
        let eng = engine_for(&signal, 0.5);
        // Trapezoid integral of the original samples.
        let mut truth = 0.0;
        for j in 1..signal.len() {
            let dt = signal.times()[j] - signal.times()[j - 1];
            truth += 0.5 * (signal.value(j, 0) + signal.value(j - 1, 0)) * dt;
        }
        let (a, b) = (signal.times()[0], *signal.times().last().unwrap());
        let res = eng.integral(a, b, 0).unwrap();
        assert!(res.contains(truth), "truth {truth} outside [{}, {}]", res.lo, res.hi);
    }

    #[test]
    fn works_with_swing_segments_too() {
        let signal = noisy(400, 5);
        let mut f = SwingFilter::new(&[0.7]).unwrap();
        let segs = run_filter(&mut f, &signal).unwrap();
        let eng = QueryEngine::new(Polyline::new(segs), &[0.7]).unwrap();
        let truth =
            (0..signal.len()).map(|j| signal.value(j, 0)).sum::<f64>() / signal.len() as f64;
        assert!(eng.mean(signal.times(), 0).unwrap().contains(truth));
    }

    #[test]
    fn error_cases() {
        let signal = noisy(50, 6);
        let eng = engine_for(&signal, 0.5);
        assert!(matches!(eng.mean(&[], 0), Err(QueryError::EmptyGrid)));
        assert!(matches!(eng.mean(signal.times(), 7), Err(QueryError::BadDimension(7))));
        assert!(matches!(eng.mean(&[1e12], 0), Err(QueryError::Uncovered { .. })));
        let poly = eng.polyline().clone();
        assert!(matches!(QueryEngine::new(poly, &[0.0]), Err(QueryError::InvalidEpsilon(_))));
    }
}
