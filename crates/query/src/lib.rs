//! # pla-query — error-bounded queries over compressed streams
//!
//! The paper's motivating pipeline stores PLA recordings in a repository
//! "for later offline analysis" (§1). This crate is that analysis layer:
//! it answers aggregate and threshold queries **directly on the
//! compressed representation** and returns deterministic bounds on the
//! true answer, derived from the filters' L∞ guarantee — every original
//! sample is within `εᵢ` of the reconstruction, so for example
//!
//! ```text
//! mean(samples)  ∈  [mean(PLA at sample times) − ε, … + ε]
//! max(samples)   ∈  [max(PLA) − ε, max(PLA) + ε]
//! #above(θ)      ∈  [count(PLA > θ + ε), count(PLA > θ − ε)]
//! ```
//!
//! Queries evaluate the [`Polyline`](pla_core::Polyline) at the sampling grid (monitoring
//! deployments know their sampling schedule; the grid is either given
//! explicitly or described by a [`SamplingGrid`]), never touching the
//! original data — the whole point of the compression.
//!
//! Two engines share these semantics:
//!
//! * [`QueryEngine`] — grid-based bounded aggregates over a single
//!   finished [`Polyline`](pla_core::Polyline).
//! * [`StoreQueryEngine`] — point / range / aggregate queries directly
//!   against a live [`StoreSnapshot`](pla_ingest::StoreSnapshot) from
//!   the ingest tier's sharded store, using the segments themselves as
//!   a learned index (two-level binary search over run start times).
//!
//! The serving tier puts the store engine on the wire (see
//! `crates/query/README.md` for the protocol):
//!
//! * [`wire`] — the bit-exact body codec for [`Query`]/[`QueryResult`]
//!   riding `pla-net`'s `QueryReq`/`QueryResp` frames.
//! * [`server`] — [`QueryServer`], the collector-side responder over
//!   any [`Acceptor`](pla_net::Acceptor), with epoch-lazy snapshot
//!   rebuilds.
//! * [`client`] — [`QueryClient`], a sans-I/O remote reader with
//!   pipelining, per-request timeouts, redial, and an epoch-validated
//!   result cache ([`SnapshotCache`]).
//!
//! ```
//! use pla_core::filters::{run_filter, SlideFilter};
//! use pla_core::{Polyline, Signal};
//! use pla_query::{QueryEngine, SamplingGrid};
//!
//! let signal = Signal::from_values(&[1.0, 2.0, 3.0, 4.0, 3.0, 2.0]);
//! let mut filter = SlideFilter::new(&[0.5]).unwrap();
//! let segments = run_filter(&mut filter, &signal).unwrap();
//! let engine = QueryEngine::new(Polyline::new(segments), &[0.5]).unwrap();
//!
//! let grid = SamplingGrid { t0: 0.0, dt: 1.0, n: 6 };
//! let mean = engine.mean(&grid.times(), 0).unwrap();
//! assert!(mean.lo <= 2.5 && 2.5 <= mean.hi); // true mean is inside
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
mod engine;
pub mod server;
mod store;
mod types;
pub mod wire;

pub use client::{
    Cached, ClientError, ClientStats, Outcome, QueryClient, QueryClientConfig, Response,
    SnapshotCache,
};
pub use engine::QueryEngine;
pub use server::{drive_query_server, QueryServer, QueryServerStats, ServiceLatency};
pub use store::{BoundedRange, LookupStats, RangeAggregate, StoreQueryEngine};
pub use types::{Bounded, BoundedCount, Crossing, CrossingKind, QueryError, SamplingGrid};
pub use wire::{Query, QueryResult, WireError};
