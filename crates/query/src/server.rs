//! The collector-side query server: accepts `pla-net` links, speaks the
//! versioned `Hello`/`HelloAck` handshake, and answers
//! [`QueryReq`](NetFrame::QueryReq) / [`EpochsReq`](NetFrame::EpochsReq)
//! frames against a shared [`SegmentStore`].
//!
//! Serving never blocks ingest: the engine wraps
//! [`SegmentStore::snapshot`] (O(streams) pointer work) and is rebuilt
//! lazily — only when a request arrives **and** the store's per-shard
//! [`epochs`](SegmentStore::epochs) moved since the last build. A
//! read-only workload over a quiet store never re-snapshots.
//!
//! Same driver split as `pla-ops`'s `OpsServer`: a sync non-blocking
//! [`pump`](QueryServer::pump) owns all protocol logic, and
//! [`drive_query_server`] wraps it in the shared single-thread
//! [`runtime`](pla_net::runtime) loop.
//!
//! Failure containment mirrors the collector: a version-mismatched
//! `Hello` gets a `HelloAck { token: 0 }` refusal and only that
//! connection closes; wire garbage (undecodable frame or query body)
//! kills only the offending connection. A *well-formed* query that the
//! engine refuses is not a failure at all — the typed
//! [`QueryError`](crate::QueryError) rides back inside the response.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;

use pla_ingest::SegmentStore;
use pla_net::frame::{encode, FrameDecoder, NetFrame, Outbox, PROTOCOL_VERSION};
use pla_net::listen::Acceptor;
use pla_net::{runtime, Link, NetConfig};

use crate::store::StoreQueryEngine;
use crate::wire::{Query, QueryResult};

const READ_CHUNK: usize = 4096;

/// Upper bounds (seconds) of the server's finite service-time buckets;
/// the implicit `+Inf` bucket follows.
pub const SERVICE_BUCKETS: [f64; 5] = [50e-6, 250e-6, 1e-3, 5e-3, 25e-3];

/// Fixed-bucket service-time distribution, accumulated by the server
/// and scraped by `pla-ops` into a Prometheus histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceLatency {
    /// Observation counts per bucket: one per [`SERVICE_BUCKETS`] bound
    /// (non-cumulative), then the `+Inf` overflow.
    pub counts: [u64; SERVICE_BUCKETS.len() + 1],
    /// Sum of all observations, seconds.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl Default for ServiceLatency {
    fn default() -> Self {
        Self { counts: [0; SERVICE_BUCKETS.len() + 1], sum: 0.0, count: 0 }
    }
}

impl ServiceLatency {
    fn observe(&mut self, seconds: f64) {
        let slot =
            SERVICE_BUCKETS.iter().position(|&b| seconds <= b).unwrap_or(SERVICE_BUCKETS.len());
        self.counts[slot] += 1;
        self.sum += seconds;
        self.count += 1;
    }

    /// `(upper_bound, count)` per finite bucket, non-cumulative — the
    /// shape `pla-ops`'s histogram samples want.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        SERVICE_BUCKETS.iter().zip(self.counts.iter()).map(|(&b, &c)| (b, c)).collect()
    }
}

/// Aggregate server counters, cheap to copy out for scraping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryServerStats {
    /// Connections currently tracked.
    pub connections: usize,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Handshakes refused (version mismatch or a non-`Hello` first
    /// frame).
    pub refused: u64,
    /// Connections killed by wire garbage (frame or body decode
    /// failure, or an ingest-plane frame on the query plane).
    pub malformed: u64,
    /// `QueryReq` frames answered.
    pub requests: u64,
    /// Answers that carried a typed [`QueryError`](crate::QueryError).
    pub errors: u64,
    /// `EpochsReq` probes answered.
    pub epoch_probes: u64,
    /// Heartbeats echoed.
    pub heartbeats: u64,
    /// Link bytes read.
    pub bytes_in: u64,
    /// Link bytes written.
    pub bytes_out: u64,
    /// Engine rebuilds (one per request round that found moved epochs).
    pub rebuilds: u64,
    /// Service-time distribution over answered queries.
    pub latency: ServiceLatency,
}

struct QueryConn<L: Link> {
    link: L,
    decoder: FrameDecoder,
    outbox: Outbox,
    /// Session token minted at handshake; `None` until a valid `Hello`.
    token: Option<u64>,
    closing: bool,
    dead: bool,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The query server. See the module docs.
pub struct QueryServer<A: Acceptor> {
    acceptor: A,
    store: Arc<SegmentStore>,
    config: NetConfig,
    conns: Vec<QueryConn<A::Link>>,
    engine: Option<StoreQueryEngine>,
    engine_epochs: Box<[u64]>,
    token_state: u64,
    stats: QueryServerStats,
}

impl<A: Acceptor> QueryServer<A> {
    /// New server answering queries against `store` for links arriving
    /// on `acceptor`.
    pub fn new(acceptor: A, store: Arc<SegmentStore>, config: NetConfig) -> Self {
        Self {
            acceptor,
            store,
            config,
            conns: Vec::new(),
            engine: None,
            engine_epochs: Box::new([]),
            token_state: 0x5EED_0F5E_51D5_0001,
            stats: QueryServerStats::default(),
        }
    }

    /// Overrides the token-minting seed (tests pin deterministic
    /// tokens).
    pub fn with_token_seed(mut self, seed: u64) -> Self {
        self.token_state = seed;
        self
    }

    /// The served store.
    pub fn store(&self) -> &Arc<SegmentStore> {
        &self.store
    }

    /// Copies out the server counters.
    pub fn stats(&self) -> QueryServerStats {
        let mut s = self.stats.clone();
        s.connections = self.conns.len();
        s
    }

    /// Rebuilds the engine iff the store's epochs moved (or no engine
    /// exists yet); returns the engine to answer with.
    fn fresh_engine(&mut self) -> &StoreQueryEngine {
        let epochs = self.store.epochs();
        if self.engine.is_none() || epochs != self.engine_epochs {
            self.engine = Some(StoreQueryEngine::new(self.store.snapshot()));
            self.engine_epochs = epochs;
            self.stats.rebuilds += 1;
        }
        self.engine.as_ref().expect("engine just ensured")
    }

    /// One non-blocking round: accept pending links, read and answer
    /// every complete frame, flush what fits. Returns bytes moved.
    pub fn pump(&mut self) -> usize {
        while let Ok(Some(link)) = self.acceptor.try_accept() {
            self.conns.push(QueryConn {
                link,
                decoder: FrameDecoder::new(self.config.max_frame),
                outbox: Outbox::default(),
                token: None,
                closing: false,
                dead: false,
            });
            self.stats.accepted += 1;
        }
        let mut moved = 0;
        let mut conns = std::mem::take(&mut self.conns);
        for conn in &mut conns {
            moved += self.pump_conn(conn);
        }
        self.conns = conns;
        self.conns.retain(|c| !(c.dead || (c.closing && c.outbox.is_empty())));
        moved
    }

    fn pump_conn(&mut self, conn: &mut QueryConn<A::Link>) -> usize {
        let mut moved = 0;
        let mut chunk = [0u8; READ_CHUNK];
        while !conn.closing {
            match conn.link.try_read(&mut chunk) {
                Ok(0) => conn.closing = true,
                Ok(n) => {
                    conn.decoder.extend(&chunk[..n]);
                    moved += n;
                    self.stats.bytes_in += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    conn.dead = true;
                    return moved;
                }
            }
        }
        while !conn.dead {
            match conn.decoder.try_next() {
                Ok(Some(frame)) => self.on_frame(conn, frame),
                Ok(None) => break,
                Err(_) => {
                    self.stats.malformed += 1;
                    conn.dead = true;
                    return moved;
                }
            }
        }
        while !conn.outbox.is_empty() {
            match conn.link.try_write(conn.outbox.as_bytes()) {
                Ok(0) => break,
                Ok(n) => {
                    conn.outbox.consume(n);
                    moved += n;
                    self.stats.bytes_out += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        moved
    }

    /// Encodes `frame` and stages it — one whole frame per
    /// [`Outbox::stage`] call, the torn-write invariant.
    fn stage(conn: &mut QueryConn<A::Link>, frame: &NetFrame) {
        let mut buf = BytesMut::new();
        encode(frame, &mut buf);
        conn.outbox.stage(&buf);
    }

    fn on_frame(&mut self, conn: &mut QueryConn<A::Link>, frame: NetFrame) {
        // Handshake: the first frame must be a version-matched Hello.
        let Some(token) = conn.token else {
            match frame {
                NetFrame::Hello { version, token: _ } if version == PROTOCOL_VERSION => {
                    let minted = loop {
                        let t = splitmix64(&mut self.token_state);
                        if t != 0 {
                            break t;
                        }
                    };
                    conn.token = Some(minted);
                    Self::stage(
                        conn,
                        &NetFrame::HelloAck {
                            version: PROTOCOL_VERSION,
                            token: minted,
                            cursors: vec![],
                        },
                    );
                }
                NetFrame::Hello { .. } => {
                    // Version mismatch: refuse cleanly, then close.
                    self.stats.refused += 1;
                    Self::stage(
                        conn,
                        &NetFrame::HelloAck {
                            version: PROTOCOL_VERSION,
                            token: 0,
                            cursors: vec![],
                        },
                    );
                    conn.closing = true;
                }
                _ => {
                    // Anything but Hello first is a protocol violation.
                    self.stats.refused += 1;
                    conn.dead = true;
                }
            }
            return;
        };
        match frame {
            NetFrame::QueryReq { req_id, body } => {
                let started = Instant::now();
                let result = match Query::decode(&body) {
                    Ok(query) => query.run(self.fresh_engine()),
                    Err(_) => {
                        // The body bytes are garbage: the peer and we
                        // disagree about the codec — kill the
                        // connection rather than guess.
                        self.stats.malformed += 1;
                        conn.dead = true;
                        return;
                    }
                };
                self.stats.requests += 1;
                if matches!(result, QueryResult::Err(_)) {
                    self.stats.errors += 1;
                }
                self.stats.latency.observe(started.elapsed().as_secs_f64());
                Self::stage(conn, &NetFrame::QueryResp { req_id, body: result.encode() });
            }
            NetFrame::EpochsReq { req_id } => {
                self.stats.epoch_probes += 1;
                Self::stage(
                    conn,
                    &NetFrame::EpochsResp { req_id, epochs: self.store.epochs().to_vec() },
                );
            }
            NetFrame::Heartbeat { seq } => {
                self.stats.heartbeats += 1;
                Self::stage(conn, &NetFrame::Heartbeat { seq });
            }
            // A duplicated Hello (replayed by a flaky path) re-states a
            // bound session: re-ack idempotently with the same token.
            NetFrame::Hello { version, .. } if version == PROTOCOL_VERSION => {
                Self::stage(
                    conn,
                    &NetFrame::HelloAck { version: PROTOCOL_VERSION, token, cursors: vec![] },
                );
            }
            // Ingest-plane frames (or a mid-session version change) do
            // not belong on the query plane.
            _ => {
                self.stats.malformed += 1;
                conn.dead = true;
            }
        }
    }
}

/// Drives a [`QueryServer`] forever on the shared single-thread
/// runtime: pump, then yield (after progress) or sleep ~1 ms (idle) —
/// the same cadence as `drive_ops` and session-mode `drive_collector`.
/// Spawn it next to the collector tasks; it completes only when the
/// surrounding root future is dropped.
pub async fn drive_query_server<A: Acceptor>(server: Rc<RefCell<QueryServer<A>>>) {
    loop {
        let moved = server.borrow_mut().pump();
        if moved > 0 {
            runtime::yield_now().await;
        } else {
            runtime::sleep(Duration::from_millis(1)).await;
        }
    }
}
