//! Live-store queries: point, range, and aggregate answers straight off
//! a [`StoreSnapshot`] — no intermediate [`Polyline`](pla_core::Polyline)
//! materialization.
//!
//! The serving-tier counterpart of [`QueryEngine`](crate::QueryEngine):
//! where that engine wraps one locally owned segment `Vec`, this one
//! wraps a whole store snapshot (every stream a collector or ingest
//! engine has published) and evaluates queries *through* the snapshot's
//! run/tail layout. The segments themselves are the index — Ferragina &
//! Lari's learned-index reading of PLA: each segment is a model mapping
//! time to value, and the sorted run starts are the routing layer above
//! the models. A point lookup is two binary searches (runs by first
//! breakpoint, then within one run), O(log n) comparisons total over an
//! immutable layout that appends never invalidate.
//!
//! ```
//! use pla_ingest::{SegmentStore, StreamId};
//! use pla_core::Segment;
//! use pla_query::StoreQueryEngine;
//!
//! let store = SegmentStore::new();
//! for i in 0..10 {
//!     let t = i as f64;
//!     store.append(1, StreamId(3), Segment {
//!         t_start: t,
//!         x_start: [t].into(),
//!         t_end: t + 1.0,
//!         x_end: [t + 1.0].into(),
//!         connected: i > 0,
//!         n_points: 2,
//!         new_recordings: if i == 0 { 2 } else { 1 },
//!     });
//! }
//! let engine = StoreQueryEngine::new(store.snapshot());
//! // The identity ramp: value(t) == t anywhere in the covered span.
//! assert_eq!(engine.point(StreamId(3), 4.5, 0).unwrap(), 4.5);
//! let agg = engine.range(StreamId(3), 2.0, 8.0, 0).unwrap();
//! assert_eq!((agg.min, agg.max, agg.mean), (2.0, 8.0, 5.0));
//! ```
//!
//! Streams are expected to be time-ordered (each segment starting no
//! earlier than its predecessor ends — what every PLA filter emits and
//! the transport preserves). The engine never panics on disorderly
//! streams, but its answers are only meaningful for ordered ones.

use std::collections::BTreeMap;

use pla_core::Segment;
use pla_ingest::{StoreSnapshot, StreamId, StreamView};

use crate::types::{Bounded, BoundedCount, QueryError};

/// Cost accounting for one lookup: how many ordering comparisons the
/// binary searches spent. Exposed so tests (and curious operators) can
/// pin the O(log n) bound instead of trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LookupStats {
    /// Ordering comparisons against segment breakpoints (run-start
    /// routing plus the in-run search plus coverage checks).
    pub comparisons: usize,
}

/// Exact aggregates of the piece-wise linear function over a time range
/// (gaps between disconnected segments interpolate, as everywhere in
/// the query layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeAggregate {
    /// Minimum of the PLA over the range.
    pub min: f64,
    /// Maximum of the PLA over the range.
    pub max: f64,
    /// Piecewise-exact integral over the range.
    pub integral: f64,
    /// Time-weighted mean (`integral / (b − a)`; the point value for a
    /// degenerate range).
    pub mean: f64,
}

/// [`RangeAggregate`] with the filters' L∞ guarantee folded in: each
/// field carries deterministic bounds on the true-signal counterpart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedRange {
    /// Bounds on the true minimum.
    pub min: Bounded,
    /// Bounds on the true maximum.
    pub max: Bounded,
    /// Bounds on the true integral (`± ε·(b−a)`).
    pub integral: Bounded,
    /// Bounds on the true time-weighted mean.
    pub mean: Bounded,
}

/// Per-stream routing layer: the first breakpoint time of every sealed
/// run (and of the tail), sorted by construction for a time-ordered
/// stream. `O(runs)` to build — snapshotting plus indexing never walks
/// the segments.
#[derive(Debug)]
struct StreamIndex {
    starts: Vec<f64>,
    dims: usize,
}

/// Point/range/aggregate queries over a live [`StoreSnapshot`]. See the
/// module docs.
pub struct StoreQueryEngine {
    snap: StoreSnapshot,
    index: BTreeMap<StreamId, StreamIndex>,
}

/// Binary partition over a slice with comparison counting: first index
/// where `pred` is false (the slice is assumed pred-partitioned).
fn partition_counted<T>(slice: &[T], mut pred: impl FnMut(&T) -> bool, cmp: &mut usize) -> usize {
    let (mut lo, mut hi) = (0, slice.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        *cmp += 1;
        if pred(&slice[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

impl StoreQueryEngine {
    /// Indexes a snapshot for querying. Costs O(streams + runs): only
    /// each block's *first* breakpoint is read, never the segments.
    pub fn new(snap: StoreSnapshot) -> Self {
        let index = snap
            .streams
            .iter()
            .map(|(&id, view)| {
                let mut starts: Vec<f64> =
                    view.runs().iter().map(|r| r.segments()[0].t_start).collect();
                if let Some(first) = view.tail().first() {
                    starts.push(first.t_start);
                }
                let dims = view.get(0).map_or(0, Segment::dims);
                (id, StreamIndex { starts, dims })
            })
            .collect();
        Self { snap, index }
    }

    /// The wrapped snapshot.
    pub fn snapshot(&self) -> &StoreSnapshot {
        &self.snap
    }

    /// Stream ids present, ascending.
    pub fn streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.snap.streams.keys().copied()
    }

    /// One stream's view, or `None` if the snapshot has no such stream.
    pub fn stream(&self, stream: StreamId) -> Option<&StreamView> {
        self.snap.streams.get(&stream)
    }

    /// Covered time span of one stream.
    pub fn span(&self, stream: StreamId) -> Option<(f64, f64)> {
        self.stream(stream)?.span()
    }

    fn view_and_index(&self, stream: StreamId) -> Result<(&StreamView, &StreamIndex), QueryError> {
        match (self.snap.streams.get(&stream), self.index.get(&stream)) {
            (Some(v), Some(i)) => Ok((v, i)),
            _ => Err(QueryError::UnknownStream(stream.0)),
        }
    }

    /// Number of segments with `t_start <= t`, via the two-level binary
    /// search: route to a block by run start, then partition within it.
    fn partition_global(view: &StreamView, idx: &StreamIndex, t: f64, cmp: &mut usize) -> usize {
        let blocks = partition_counted(&idx.starts, |&s| s <= t, cmp);
        if blocks == 0 {
            return 0;
        }
        let block = blocks - 1;
        let (slice, base) = if block < view.runs().len() {
            (view.runs()[block].segments(), block * view.run_len())
        } else {
            (view.tail(), view.runs().len() * view.run_len())
        };
        base + partition_counted(slice, |s| s.t_start <= t, cmp)
    }

    /// Index of the segment covering `t` (the last segment starting at
    /// or before `t` — exactly [`Polyline::eval`](pla_core::Polyline)'s
    /// preference), or the insertion point when `t` falls in a gap.
    fn find(view: &StreamView, idx: &StreamIndex, t: f64, cmp: &mut usize) -> Result<usize, usize> {
        let p = Self::partition_global(view, idx, t, cmp);
        if p == 0 {
            return Err(0);
        }
        *cmp += 1;
        if view.get(p - 1).is_some_and(|s| s.covers(t)) {
            return Ok(p - 1);
        }
        *cmp += 1;
        if view.get(p).is_some_and(|s| s.covers(t)) {
            return Ok(p);
        }
        Err(p)
    }

    /// PLA value at `t`: in-segment linear interpolation, gap times
    /// interpolated between the surrounding endpoints. Errors outside
    /// the covered span.
    fn eval(
        view: &StreamView,
        idx: &StreamIndex,
        t: f64,
        dim: usize,
        cmp: &mut usize,
    ) -> Result<f64, QueryError> {
        let (lo, hi) = view.span().ok_or(QueryError::Uncovered { t })?;
        if t < lo || t > hi {
            return Err(QueryError::Uncovered { t });
        }
        match Self::find(view, idx, t, cmp) {
            Ok(i) => Ok(view.get(i).expect("find returned a valid index").eval(t, dim)),
            Err(after) => {
                // Inside the span but between segments: interpolate the
                // gap; an abutting disconnected boundary holds the
                // earlier endpoint (cannot occur for `find` misses, but
                // keep the Hold fallback for degenerate geometry).
                let a = view.get(after - 1).ok_or(QueryError::Uncovered { t })?;
                match view.get(after) {
                    Some(b) if b.t_start > a.t_end => {
                        let frac = (t - a.t_end) / (b.t_start - a.t_end);
                        Ok(a.x_end[dim] + frac * (b.x_start[dim] - a.x_end[dim]))
                    }
                    _ => Ok(a.x_end[dim]),
                }
            }
        }
    }

    fn check_dim(idx: &StreamIndex, dim: usize) -> Result<(), QueryError> {
        if dim < idx.dims {
            Ok(())
        } else {
            Err(QueryError::BadDimension(dim))
        }
    }

    fn check_eps(eps: f64) -> Result<(), QueryError> {
        if eps.is_finite() && eps > 0.0 {
            Ok(())
        } else {
            Err(QueryError::InvalidEpsilon(eps))
        }
    }

    /// PLA value of `stream` at time `t` for dimension `dim`.
    pub fn point(&self, stream: StreamId, t: f64, dim: usize) -> Result<f64, QueryError> {
        Ok(self.point_with_stats(stream, t, dim)?.0)
    }

    /// [`point`](Self::point) plus the comparison count the lookup
    /// spent — the observable the O(log n) acceptance test pins.
    pub fn point_with_stats(
        &self,
        stream: StreamId,
        t: f64,
        dim: usize,
    ) -> Result<(f64, LookupStats), QueryError> {
        let (view, idx) = self.view_and_index(stream)?;
        Self::check_dim(idx, dim)?;
        let mut cmp = 0;
        let value = Self::eval(view, idx, t, dim, &mut cmp)?;
        Ok((value, LookupStats { comparisons: cmp }))
    }

    /// Point query with the ±ε guarantee folded in: the true sample (if
    /// one was taken at `t`) lies within the returned bounds.
    pub fn point_bounded(
        &self,
        stream: StreamId,
        t: f64,
        dim: usize,
        eps: f64,
    ) -> Result<Bounded, QueryError> {
        Self::check_eps(eps)?;
        let value = self.point(stream, t, dim)?;
        Ok(Bounded { value, lo: value - eps, hi: value + eps })
    }

    /// Exact min/max/integral/mean of the PLA over `[a, b]` —
    /// piecewise-exact (every segment boundary in the range is a knot),
    /// O(log n + k) for k covered segments, no polyline materialized.
    pub fn range(
        &self,
        stream: StreamId,
        a: f64,
        b: f64,
        dim: usize,
    ) -> Result<RangeAggregate, QueryError> {
        let (view, idx) = self.view_and_index(stream)?;
        Self::check_dim(idx, dim)?;
        if b < a {
            return Err(QueryError::EmptyGrid);
        }
        let mut cmp = 0;
        let va = Self::eval(view, idx, a, dim, &mut cmp)?;
        if a == b {
            return Ok(RangeAggregate { min: va, max: va, integral: 0.0, mean: va });
        }
        let vb = Self::eval(view, idx, b, dim, &mut cmp)?;
        // Knots: the range endpoints plus every segment breakpoint
        // strictly inside (a, b), walked in segment order. The PLA is
        // linear between consecutive knots (in-segment pieces and
        // interpolated gaps alike), so endpoint values carry the exact
        // extrema and trapezoids the exact integral. An abutting
        // disconnected boundary contributes two knots at the same time
        // — a zero-width piece that costs the integral nothing and
        // feeds the jump's both sides into min/max.
        let first = match Self::find(view, idx, a, &mut cmp) {
            Ok(i) => i,
            Err(after) => after.saturating_sub(1),
        };
        let mut min = va.min(vb);
        let mut max = va.max(vb);
        let mut integral = 0.0;
        let (mut t_prev, mut v_prev) = (a, va);
        let mut knot = |t: f64, v: f64, min: &mut f64, max: &mut f64, integral: &mut f64| {
            *min = min.min(v);
            *max = max.max(v);
            *integral += 0.5 * (v_prev + v) * (t - t_prev);
            (t_prev, v_prev) = (t, v);
        };
        for i in first..view.len() {
            let seg = view.get(i).expect("index in bounds");
            if seg.t_start >= b {
                break;
            }
            if seg.t_start > a {
                knot(seg.t_start, seg.x_start[dim], &mut min, &mut max, &mut integral);
            }
            if seg.t_end > a && seg.t_end < b {
                knot(seg.t_end, seg.x_end[dim], &mut min, &mut max, &mut integral);
            }
        }
        knot(b, vb, &mut min, &mut max, &mut integral);
        Ok(RangeAggregate { min, max, integral, mean: integral / (b - a) })
    }

    /// [`range`](Self::range) with the ±ε guarantee folded in: bounds
    /// on the true signal's extrema, integral (`± ε·(b−a)`), and mean.
    pub fn range_bounded(
        &self,
        stream: StreamId,
        a: f64,
        b: f64,
        dim: usize,
        eps: f64,
    ) -> Result<BoundedRange, QueryError> {
        Self::check_eps(eps)?;
        let agg = self.range(stream, a, b, dim)?;
        let band = |value: f64, slack: f64| Bounded { value, lo: value - slack, hi: value + slack };
        Ok(BoundedRange {
            min: band(agg.min, eps),
            max: band(agg.max, eps),
            integral: band(agg.integral, eps * (b - a)),
            mean: band(agg.mean, eps),
        })
    }

    /// Sample count strictly above `threshold` at the grid `times`,
    /// bounded from both sides (the [`QueryEngine::count_above`]
    /// semantics, evaluated through the store layout).
    ///
    /// [`QueryEngine::count_above`]: crate::QueryEngine::count_above
    pub fn count_above(
        &self,
        stream: StreamId,
        times: &[f64],
        dim: usize,
        threshold: f64,
        eps: f64,
    ) -> Result<BoundedCount, QueryError> {
        let (view, idx) = self.view_and_index(stream)?;
        Self::check_dim(idx, dim)?;
        Self::check_eps(eps)?;
        if times.is_empty() {
            return Err(QueryError::EmptyGrid);
        }
        let mut cmp = 0;
        let (mut definite, mut possible) = (0, 0);
        for &t in times {
            let v = Self::eval(view, idx, t, dim, &mut cmp)?;
            if v - eps > threshold {
                definite += 1;
            }
            if v + eps > threshold {
                possible += 1;
            }
        }
        Ok(BoundedCount { definite, possible })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_ingest::{SegmentStore, StoreConfig};

    fn seg(t0: f64, x0: f64, t1: f64, x1: f64) -> Segment {
        Segment {
            t_start: t0,
            x_start: [x0].into(),
            t_end: t1,
            x_end: [x1].into(),
            connected: false,
            n_points: 2,
            new_recordings: 2,
        }
    }

    /// The module-doc polyline shape from pla-core's reconstruct tests:
    /// ramp, gap, plateau, connected descent.
    fn sample_store() -> SegmentStore {
        let store = SegmentStore::with_config(StoreConfig { shards: 2, seal_threshold: 2 });
        store.append(1, StreamId(5), seg(0.0, 0.0, 2.0, 2.0));
        // gap (2, 3)
        store.append(1, StreamId(5), seg(3.0, 5.0, 5.0, 5.0));
        store.append(1, StreamId(5), seg(5.0, 5.0, 6.0, 4.0));
        store
    }

    #[test]
    fn point_matches_polyline_semantics() {
        let eng = StoreQueryEngine::new(sample_store().snapshot());
        let id = StreamId(5);
        assert_eq!(eng.point(id, 1.0, 0).unwrap(), 1.0);
        assert_eq!(eng.point(id, 4.0, 0).unwrap(), 5.0);
        assert_eq!(eng.point(id, 5.5, 0).unwrap(), 4.5);
        // Boundaries resolve; the gap interpolates.
        assert_eq!(eng.point(id, 2.0, 0).unwrap(), 2.0);
        assert_eq!(eng.point(id, 3.0, 0).unwrap(), 5.0);
        assert_eq!(eng.point(id, 2.5, 0).unwrap(), 3.5);
        // Outside the span is typed, not extrapolated.
        assert!(matches!(eng.point(id, -1.0, 0), Err(QueryError::Uncovered { .. })));
        assert!(matches!(eng.point(id, 7.0, 0), Err(QueryError::Uncovered { .. })));
    }

    #[test]
    fn unknown_stream_and_bad_dim_are_typed() {
        let eng = StoreQueryEngine::new(sample_store().snapshot());
        assert!(matches!(eng.point(StreamId(99), 1.0, 0), Err(QueryError::UnknownStream(99))));
        assert!(matches!(eng.point(StreamId(5), 1.0, 3), Err(QueryError::BadDimension(3))));
        assert!(matches!(
            eng.point_bounded(StreamId(5), 1.0, 0, -0.5),
            Err(QueryError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn range_aggregates_are_piecewise_exact() {
        let eng = StoreQueryEngine::new(sample_store().snapshot());
        let id = StreamId(5);
        // Whole span: ramp 0→2, gap 2→5, plateau, descent 5→4.
        let agg = eng.range(id, 0.0, 6.0, 0).unwrap();
        assert_eq!(agg.min, 0.0);
        assert_eq!(agg.max, 5.0);
        // Exact: ramp 2.0 + gap 3.5 + plateau 10.0 + descent 4.5.
        assert!((agg.integral - 20.0).abs() < 1e-12, "integral {}", agg.integral);
        assert!((agg.mean - 20.0 / 6.0).abs() < 1e-12);
        // Sub-range straddling the gap only.
        let gap = eng.range(id, 2.0, 3.0, 0).unwrap();
        assert_eq!((gap.min, gap.max), (2.0, 5.0));
        assert!((gap.integral - 3.5).abs() < 1e-12);
        // Degenerate range: the point value.
        let p = eng.range(id, 4.0, 4.0, 0).unwrap();
        assert_eq!((p.min, p.max, p.integral, p.mean), (5.0, 5.0, 0.0, 5.0));
        // Backwards range is typed.
        assert!(matches!(eng.range(id, 5.0, 1.0, 0), Err(QueryError::EmptyGrid)));
    }

    #[test]
    fn bounded_variants_carry_the_guarantee() {
        let eng = StoreQueryEngine::new(sample_store().snapshot());
        let id = StreamId(5);
        let b = eng.point_bounded(id, 1.0, 0, 0.5).unwrap();
        assert_eq!((b.lo, b.value, b.hi), (0.5, 1.0, 1.5));
        let r = eng.range_bounded(id, 0.0, 6.0, 0, 0.5).unwrap();
        assert_eq!(r.min.lo, -0.5);
        assert_eq!(r.integral.radius(), 3.0); // ε·(b−a)
        let c = eng.count_above(id, &[1.0, 4.0, 5.5], 0, 4.4, 0.5).unwrap();
        assert_eq!((c.definite, c.possible), (1, 2));
    }

    #[test]
    fn abutting_disconnected_jump_feeds_both_sides_to_extrema() {
        let store = SegmentStore::with_config(StoreConfig { shards: 1, seal_threshold: 4 });
        store.append(1, StreamId(1), seg(0.0, 0.0, 1.0, 0.0));
        store.append(1, StreamId(1), seg(1.0, 10.0, 2.0, 10.0));
        let eng = StoreQueryEngine::new(store.snapshot());
        // At the jump instant the later segment wins (same preference as
        // `Polyline::eval`: the last segment starting at or before t)…
        assert_eq!(eng.point(StreamId(1), 1.0, 0).unwrap(), 10.0);
        // …but the range sees both plateaus and the exact integral.
        let agg = eng.range(StreamId(1), 0.0, 2.0, 0).unwrap();
        assert_eq!((agg.min, agg.max), (0.0, 10.0));
        assert!((agg.integral - 10.0).abs() < 1e-12);
    }

    #[test]
    fn lookups_route_through_runs_and_tail() {
        // Enough segments to seal several runs; probe each region.
        let store = SegmentStore::with_config(StoreConfig { shards: 1, seal_threshold: 4 });
        for i in 0..11 {
            let t = i as f64;
            store.append(1, StreamId(2), seg(t, t, t + 1.0, t + 1.0));
        }
        let eng = StoreQueryEngine::new(store.snapshot());
        for probe in [0.25, 3.75, 4.5, 7.25, 9.5, 10.75] {
            let (v, stats) = eng.point_with_stats(StreamId(2), probe, 0).unwrap();
            assert!((v - probe).abs() < 1e-12, "identity ramp at {probe} gave {v}");
            assert!(stats.comparisons > 0);
        }
    }
}
