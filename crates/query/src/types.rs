//! Result and error types of the query layer.

/// A scalar answer with deterministic bounds: the true value (computed on
/// the original samples) is guaranteed to lie in `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounded {
    /// The estimate computed on the approximation.
    pub value: f64,
    /// Lower bound on the true value.
    pub lo: f64,
    /// Upper bound on the true value.
    pub hi: f64,
}

impl Bounded {
    /// Half-width of the uncertainty interval.
    pub fn radius(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Whether `truth` is consistent with the bounds (used by tests).
    pub fn contains(&self, truth: f64) -> bool {
        truth >= self.lo - 1e-9 && truth <= self.hi + 1e-9
    }
}

/// A counting answer: `definite` samples certainly satisfy the predicate,
/// `possible` is the upper bound (samples whose ε-band straddles the
/// threshold could go either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedCount {
    /// Samples that satisfy the predicate no matter where they sit in
    /// their ε-band.
    pub definite: usize,
    /// Samples that *might* satisfy it.
    pub possible: usize,
}

impl BoundedCount {
    /// Whether a true count is consistent with the bounds.
    pub fn contains(&self, truth: usize) -> bool {
        truth >= self.definite && truth <= self.possible
    }
}

/// Certainty class of a detected threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossingKind {
    /// The approximation moved from certainly-below to certainly-above
    /// (or vice versa): a real crossing happened nearby.
    Certain,
    /// The approximation entered or left the ±ε ambiguity band around
    /// the threshold: a crossing may have happened.
    Possible,
}

/// One detected threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Grid time at which the state change was observed.
    pub t: f64,
    /// Rising (below→above) or falling.
    pub rising: bool,
    /// Certainty classification.
    pub kind: CrossingKind,
}

/// A regular sampling schedule `t0, t0+dt, …` with `n` points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingGrid {
    /// First sample time.
    pub t0: f64,
    /// Sample spacing (must be positive).
    pub dt: f64,
    /// Number of samples.
    pub n: usize,
}

impl SamplingGrid {
    /// Materializes the grid times.
    pub fn times(&self) -> Vec<f64> {
        (0..self.n).map(|j| self.t0 + self.dt * j as f64).collect()
    }
}

/// Errors raised by the query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The engine's ε vector does not match the polyline's dimensions.
    DimensionMismatch {
        /// Dimensions of the polyline.
        expected: usize,
        /// Length of the provided ε vector.
        got: usize,
    },
    /// A query referenced a dimension the polyline does not have.
    BadDimension(usize),
    /// A grid time is not covered by the approximation.
    Uncovered {
        /// The offending time.
        t: f64,
    },
    /// The query grid was empty.
    EmptyGrid,
    /// An ε was not finite and positive.
    InvalidEpsilon(f64),
    /// A store query named a stream the snapshot does not hold (the raw
    /// stream id, to keep this crate's error type transport-agnostic).
    UnknownStream(u64),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionMismatch { expected, got } => {
                write!(f, "ε vector has {got} entries, polyline has {expected} dimensions")
            }
            Self::BadDimension(d) => write!(f, "dimension {d} out of range"),
            Self::Uncovered { t } => write!(f, "time {t} not covered by the approximation"),
            Self::EmptyGrid => write!(f, "query grid is empty"),
            Self::InvalidEpsilon(e) => write!(f, "ε must be finite and positive, got {e}"),
            Self::UnknownStream(id) => write!(f, "stream#{id} not present in the snapshot"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_contains_and_radius() {
        let b = Bounded { value: 5.0, lo: 4.0, hi: 6.0 };
        assert!(b.contains(4.5));
        assert!(!b.contains(6.5));
        assert_eq!(b.radius(), 1.0);
    }

    #[test]
    fn bounded_count_contains() {
        let c = BoundedCount { definite: 2, possible: 5 };
        assert!(c.contains(2));
        assert!(c.contains(5));
        assert!(!c.contains(1));
        assert!(!c.contains(6));
    }

    #[test]
    fn grid_times() {
        let g = SamplingGrid { t0: 1.0, dt: 0.5, n: 3 };
        assert_eq!(g.times(), vec![1.0, 1.5, 2.0]);
    }
}
