//! Wire codec for remote queries: the opaque bodies of
//! [`NetFrame::QueryReq`](pla_net::NetFrame::QueryReq) /
//! [`NetFrame::QueryResp`](pla_net::NetFrame::QueryResp).
//!
//! The frame layer carries `(req_id, body)` and never looks inside the
//! body; this module owns the body format, so the query language can
//! grow without touching `pla-net`'s framing (new tags here, not new
//! frame kinds there — though any change *here* still changes frame
//! *meaning* and must bump
//! [`PROTOCOL_VERSION`](pla_net::frame::PROTOCOL_VERSION)).
//!
//! Every `f64` travels as its IEEE-754 bit pattern
//! ([`f64::to_bits`], little-endian), never through a decimal detour:
//! a remote answer must be **bit-identical** to the local
//! [`StoreQueryEngine`](crate::StoreQueryEngine) answer on the same
//! snapshot, which a text round-trip cannot promise.
//!
//! Layout: one leading tag byte, then the variant's fields in
//! declaration order, fixed-width little-endian. Vectors are a `u32`
//! count followed by the elements. A decoded body must consume every
//! byte — trailing garbage is a typed [`WireError::Trailing`], not
//! silently ignored, so a desynced peer fails loudly.

use bytes::Bytes;

use crate::store::{BoundedRange, LookupStats, RangeAggregate, StoreQueryEngine};
use crate::types::{Bounded, BoundedCount, QueryError};
use pla_ingest::StreamId;

/// One remote query — the body of a `QueryReq` frame. Mirrors the
/// [`StoreQueryEngine`](crate::StoreQueryEngine) surface method for
/// method.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// [`StoreQueryEngine::point`].
    Point {
        /// Raw stream id.
        stream: u64,
        /// Query time.
        t: f64,
        /// Dimension index.
        dim: u32,
    },
    /// [`StoreQueryEngine::point_with_stats`] — the comparison count
    /// rides back so the O(log n) pin survives serialization.
    PointWithStats {
        /// Raw stream id.
        stream: u64,
        /// Query time.
        t: f64,
        /// Dimension index.
        dim: u32,
    },
    /// [`StoreQueryEngine::point_bounded`].
    PointBounded {
        /// Raw stream id.
        stream: u64,
        /// Query time.
        t: f64,
        /// Dimension index.
        dim: u32,
        /// The stream's L∞ filter tolerance.
        eps: f64,
    },
    /// [`StoreQueryEngine::range`].
    Range {
        /// Raw stream id.
        stream: u64,
        /// Range start.
        a: f64,
        /// Range end.
        b: f64,
        /// Dimension index.
        dim: u32,
    },
    /// [`StoreQueryEngine::range_bounded`].
    RangeBounded {
        /// Raw stream id.
        stream: u64,
        /// Range start.
        a: f64,
        /// Range end.
        b: f64,
        /// Dimension index.
        dim: u32,
        /// The stream's L∞ filter tolerance.
        eps: f64,
    },
    /// [`StoreQueryEngine::count_above`].
    CountAbove {
        /// Raw stream id.
        stream: u64,
        /// Dimension index.
        dim: u32,
        /// Threshold the count is measured against.
        threshold: f64,
        /// The stream's L∞ filter tolerance.
        eps: f64,
        /// The sampling-grid times to evaluate at.
        times: Vec<f64>,
    },
    /// [`StoreQueryEngine::span`].
    Span {
        /// Raw stream id.
        stream: u64,
    },
    /// [`StoreQueryEngine::streams`] — the ids present in the snapshot.
    Streams,
}

/// One remote answer — the body of a `QueryResp` frame. A well-formed
/// query always gets a `QueryResult` back, including engine errors
/// ([`QueryResult::Err`]); only a *malformed body* is a connection-level
/// failure.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A plain scalar ([`Query::Point`]).
    Value(f64),
    /// Scalar plus lookup cost ([`Query::PointWithStats`]).
    ValueWithStats {
        /// The point value.
        value: f64,
        /// Comparisons the server's lookup spent.
        comparisons: u64,
    },
    /// A bounded scalar ([`Query::PointBounded`]).
    Bounded(Bounded),
    /// Exact range aggregates ([`Query::Range`]).
    Range(RangeAggregate),
    /// Bounded range aggregates ([`Query::RangeBounded`]).
    BoundedRange(BoundedRange),
    /// A bounded count ([`Query::CountAbove`]).
    Count(BoundedCount),
    /// Covered span, if any ([`Query::Span`]).
    Span(Option<(f64, f64)>),
    /// Stream ids present, ascending ([`Query::Streams`]).
    Streams(Vec<u64>),
    /// The engine's typed refusal.
    Err(QueryError),
}

/// Body-decoding errors. Unlike [`QueryError`] (a well-formed query the
/// engine refuses), any of these means the peer and we disagree about
/// the byte format — the connection is no longer trustworthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before the variant's fields did.
    Truncated(&'static str),
    /// Unknown variant tag.
    BadTag {
        /// Which enum the tag was decoding.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Bytes left over after a complete variant.
    Trailing(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated(what) => write!(f, "query body truncated inside {what}"),
            Self::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            Self::Trailing(n) => write!(f, "{n} trailing bytes after query body"),
        }
    }
}

impl std::error::Error for WireError {}

const Q_POINT: u8 = 1;
const Q_POINT_STATS: u8 = 2;
const Q_POINT_BOUNDED: u8 = 3;
const Q_RANGE: u8 = 4;
const Q_RANGE_BOUNDED: u8 = 5;
const Q_COUNT_ABOVE: u8 = 6;
const Q_SPAN: u8 = 7;
const Q_STREAMS: u8 = 8;

const R_VALUE: u8 = 1;
const R_VALUE_STATS: u8 = 2;
const R_BOUNDED: u8 = 3;
const R_RANGE: u8 = 4;
const R_RANGE_BOUNDED: u8 = 5;
const R_COUNT: u8 = 6;
const R_SPAN: u8 = 7;
const R_STREAMS: u8 = 8;
const R_ERR: u8 = 9;

const E_DIMENSION_MISMATCH: u8 = 1;
const E_BAD_DIMENSION: u8 = 2;
const E_UNCOVERED: u8 = 3;
const E_EMPTY_GRID: u8 = 4;
const E_INVALID_EPSILON: u8 = 5;
const E_UNKNOWN_STREAM: u8 = 6;

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bounded(out: &mut Vec<u8>, b: &Bounded) {
    put_f64(out, b.value);
    put_f64(out, b.lo);
    put_f64(out, b.hi);
}

/// Byte cursor over a query body; every read is bounds-checked into a
/// typed [`WireError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.at < n {
            return Err(WireError::Truncated(what));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn bounded(&mut self, what: &'static str) -> Result<Bounded, WireError> {
        Ok(Bounded { value: self.f64(what)?, lo: self.f64(what)?, hi: self.f64(what)? })
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.at;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing(left))
        }
    }
}

impl Query {
    /// Encodes this query as a `QueryReq` frame body.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            Self::Point { stream, t, dim } => {
                out.push(Q_POINT);
                put_u64(&mut out, *stream);
                put_f64(&mut out, *t);
                put_u32(&mut out, *dim);
            }
            Self::PointWithStats { stream, t, dim } => {
                out.push(Q_POINT_STATS);
                put_u64(&mut out, *stream);
                put_f64(&mut out, *t);
                put_u32(&mut out, *dim);
            }
            Self::PointBounded { stream, t, dim, eps } => {
                out.push(Q_POINT_BOUNDED);
                put_u64(&mut out, *stream);
                put_f64(&mut out, *t);
                put_u32(&mut out, *dim);
                put_f64(&mut out, *eps);
            }
            Self::Range { stream, a, b, dim } => {
                out.push(Q_RANGE);
                put_u64(&mut out, *stream);
                put_f64(&mut out, *a);
                put_f64(&mut out, *b);
                put_u32(&mut out, *dim);
            }
            Self::RangeBounded { stream, a, b, dim, eps } => {
                out.push(Q_RANGE_BOUNDED);
                put_u64(&mut out, *stream);
                put_f64(&mut out, *a);
                put_f64(&mut out, *b);
                put_u32(&mut out, *dim);
                put_f64(&mut out, *eps);
            }
            Self::CountAbove { stream, dim, threshold, eps, times } => {
                out.push(Q_COUNT_ABOVE);
                put_u64(&mut out, *stream);
                put_u32(&mut out, *dim);
                put_f64(&mut out, *threshold);
                put_f64(&mut out, *eps);
                put_u32(&mut out, times.len() as u32);
                for &t in times {
                    put_f64(&mut out, t);
                }
            }
            Self::Span { stream } => {
                out.push(Q_SPAN);
                put_u64(&mut out, *stream);
            }
            Self::Streams => out.push(Q_STREAMS),
        }
        Bytes::from(out)
    }

    /// Decodes a `QueryReq` frame body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(body);
        let query = match c.u8("Query tag")? {
            Q_POINT => {
                Self::Point { stream: c.u64("Point")?, t: c.f64("Point")?, dim: c.u32("Point")? }
            }
            Q_POINT_STATS => Self::PointWithStats {
                stream: c.u64("PointWithStats")?,
                t: c.f64("PointWithStats")?,
                dim: c.u32("PointWithStats")?,
            },
            Q_POINT_BOUNDED => Self::PointBounded {
                stream: c.u64("PointBounded")?,
                t: c.f64("PointBounded")?,
                dim: c.u32("PointBounded")?,
                eps: c.f64("PointBounded")?,
            },
            Q_RANGE => Self::Range {
                stream: c.u64("Range")?,
                a: c.f64("Range")?,
                b: c.f64("Range")?,
                dim: c.u32("Range")?,
            },
            Q_RANGE_BOUNDED => Self::RangeBounded {
                stream: c.u64("RangeBounded")?,
                a: c.f64("RangeBounded")?,
                b: c.f64("RangeBounded")?,
                dim: c.u32("RangeBounded")?,
                eps: c.f64("RangeBounded")?,
            },
            Q_COUNT_ABOVE => {
                let stream = c.u64("CountAbove")?;
                let dim = c.u32("CountAbove")?;
                let threshold = c.f64("CountAbove")?;
                let eps = c.f64("CountAbove")?;
                let n = c.u32("CountAbove count")? as usize;
                let mut times = Vec::with_capacity(n.min(body.len() / 8 + 1));
                for _ in 0..n {
                    times.push(c.f64("CountAbove times")?);
                }
                Self::CountAbove { stream, dim, threshold, eps, times }
            }
            Q_SPAN => Self::Span { stream: c.u64("Span")? },
            Q_STREAMS => Self::Streams,
            tag => return Err(WireError::BadTag { what: "Query", tag }),
        };
        c.finish()?;
        Ok(query)
    }

    /// Executes this query against a local engine — the server's
    /// dispatch, and the reference the remote≡local equivalence tests
    /// compare wire answers against.
    pub fn run(&self, engine: &StoreQueryEngine) -> QueryResult {
        fn wrap<T>(r: Result<T, QueryError>, ok: impl FnOnce(T) -> QueryResult) -> QueryResult {
            match r {
                Ok(v) => ok(v),
                Err(e) => QueryResult::Err(e),
            }
        }
        match self {
            Self::Point { stream, t, dim } => {
                wrap(engine.point(StreamId(*stream), *t, *dim as usize), QueryResult::Value)
            }
            Self::PointWithStats { stream, t, dim } => wrap(
                engine.point_with_stats(StreamId(*stream), *t, *dim as usize),
                |(value, stats)| QueryResult::ValueWithStats {
                    value,
                    comparisons: stats.comparisons as u64,
                },
            ),
            Self::PointBounded { stream, t, dim, eps } => wrap(
                engine.point_bounded(StreamId(*stream), *t, *dim as usize, *eps),
                QueryResult::Bounded,
            ),
            Self::Range { stream, a, b, dim } => {
                wrap(engine.range(StreamId(*stream), *a, *b, *dim as usize), QueryResult::Range)
            }
            Self::RangeBounded { stream, a, b, dim, eps } => wrap(
                engine.range_bounded(StreamId(*stream), *a, *b, *dim as usize, *eps),
                QueryResult::BoundedRange,
            ),
            Self::CountAbove { stream, dim, threshold, eps, times } => wrap(
                engine.count_above(StreamId(*stream), times, *dim as usize, *threshold, *eps),
                QueryResult::Count,
            ),
            Self::Span { stream } => QueryResult::Span(engine.span(StreamId(*stream))),
            Self::Streams => QueryResult::Streams(engine.streams().map(|id| id.0).collect()),
        }
    }
}

impl QueryResult {
    /// Encodes this result as a `QueryResp` frame body.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::new();
        match self {
            Self::Value(v) => {
                out.push(R_VALUE);
                put_f64(&mut out, *v);
            }
            Self::ValueWithStats { value, comparisons } => {
                out.push(R_VALUE_STATS);
                put_f64(&mut out, *value);
                put_u64(&mut out, *comparisons);
            }
            Self::Bounded(b) => {
                out.push(R_BOUNDED);
                put_bounded(&mut out, b);
            }
            Self::Range(r) => {
                out.push(R_RANGE);
                put_f64(&mut out, r.min);
                put_f64(&mut out, r.max);
                put_f64(&mut out, r.integral);
                put_f64(&mut out, r.mean);
            }
            Self::BoundedRange(r) => {
                out.push(R_RANGE_BOUNDED);
                put_bounded(&mut out, &r.min);
                put_bounded(&mut out, &r.max);
                put_bounded(&mut out, &r.integral);
                put_bounded(&mut out, &r.mean);
            }
            Self::Count(c) => {
                out.push(R_COUNT);
                put_u64(&mut out, c.definite as u64);
                put_u64(&mut out, c.possible as u64);
            }
            Self::Span(span) => {
                out.push(R_SPAN);
                match span {
                    Some((lo, hi)) => {
                        out.push(1);
                        put_f64(&mut out, *lo);
                        put_f64(&mut out, *hi);
                    }
                    None => out.push(0),
                }
            }
            Self::Streams(ids) => {
                out.push(R_STREAMS);
                put_u32(&mut out, ids.len() as u32);
                for &id in ids {
                    put_u64(&mut out, id);
                }
            }
            Self::Err(e) => {
                out.push(R_ERR);
                match e {
                    QueryError::DimensionMismatch { expected, got } => {
                        out.push(E_DIMENSION_MISMATCH);
                        put_u64(&mut out, *expected as u64);
                        put_u64(&mut out, *got as u64);
                    }
                    QueryError::BadDimension(d) => {
                        out.push(E_BAD_DIMENSION);
                        put_u64(&mut out, *d as u64);
                    }
                    QueryError::Uncovered { t } => {
                        out.push(E_UNCOVERED);
                        put_f64(&mut out, *t);
                    }
                    QueryError::EmptyGrid => out.push(E_EMPTY_GRID),
                    QueryError::InvalidEpsilon(e) => {
                        out.push(E_INVALID_EPSILON);
                        put_f64(&mut out, *e);
                    }
                    QueryError::UnknownStream(id) => {
                        out.push(E_UNKNOWN_STREAM);
                        put_u64(&mut out, *id);
                    }
                }
            }
        }
        Bytes::from(out)
    }

    /// Decodes a `QueryResp` frame body.
    pub fn decode(body: &[u8]) -> Result<Self, WireError> {
        let mut c = Cursor::new(body);
        let result = match c.u8("QueryResult tag")? {
            R_VALUE => Self::Value(c.f64("Value")?),
            R_VALUE_STATS => Self::ValueWithStats {
                value: c.f64("ValueWithStats")?,
                comparisons: c.u64("ValueWithStats")?,
            },
            R_BOUNDED => Self::Bounded(c.bounded("Bounded")?),
            R_RANGE => Self::Range(RangeAggregate {
                min: c.f64("Range")?,
                max: c.f64("Range")?,
                integral: c.f64("Range")?,
                mean: c.f64("Range")?,
            }),
            R_RANGE_BOUNDED => Self::BoundedRange(BoundedRange {
                min: c.bounded("BoundedRange")?,
                max: c.bounded("BoundedRange")?,
                integral: c.bounded("BoundedRange")?,
                mean: c.bounded("BoundedRange")?,
            }),
            R_COUNT => Self::Count(BoundedCount {
                definite: c.u64("Count")? as usize,
                possible: c.u64("Count")? as usize,
            }),
            R_SPAN => match c.u8("Span flag")? {
                0 => Self::Span(None),
                1 => Self::Span(Some((c.f64("Span")?, c.f64("Span")?))),
                tag => return Err(WireError::BadTag { what: "Span flag", tag }),
            },
            R_STREAMS => {
                let n = c.u32("Streams count")? as usize;
                let mut ids = Vec::with_capacity(n.min(body.len() / 8 + 1));
                for _ in 0..n {
                    ids.push(c.u64("Streams ids")?);
                }
                Self::Streams(ids)
            }
            R_ERR => {
                let err = match c.u8("QueryError tag")? {
                    E_DIMENSION_MISMATCH => QueryError::DimensionMismatch {
                        expected: c.u64("DimensionMismatch")? as usize,
                        got: c.u64("DimensionMismatch")? as usize,
                    },
                    E_BAD_DIMENSION => QueryError::BadDimension(c.u64("BadDimension")? as usize),
                    E_UNCOVERED => QueryError::Uncovered { t: c.f64("Uncovered")? },
                    E_EMPTY_GRID => QueryError::EmptyGrid,
                    E_INVALID_EPSILON => QueryError::InvalidEpsilon(c.f64("InvalidEpsilon")?),
                    E_UNKNOWN_STREAM => QueryError::UnknownStream(c.u64("UnknownStream")?),
                    tag => return Err(WireError::BadTag { what: "QueryError", tag }),
                };
                Self::Err(err)
            }
            tag => return Err(WireError::BadTag { what: "QueryResult", tag }),
        };
        c.finish()?;
        Ok(result)
    }

    /// The lookup stats a `ValueWithStats` carries, if this is one —
    /// convenience for the metrics accumulation path.
    pub fn lookup_stats(&self) -> Option<LookupStats> {
        match self {
            Self::ValueWithStats { comparisons, .. } => {
                Some(LookupStats { comparisons: *comparisons as usize })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_queries() -> Vec<Query> {
        vec![
            Query::Point { stream: 5, t: 1.5, dim: 0 },
            Query::PointWithStats { stream: u64::MAX, t: -0.0, dim: 3 },
            Query::PointBounded { stream: 1, t: f64::MAX, dim: 0, eps: 0.25 },
            Query::Range { stream: 2, a: 0.0, b: 6.0, dim: 1 },
            Query::RangeBounded { stream: 2, a: -1.0, b: 1.0, dim: 0, eps: 1e-9 },
            Query::CountAbove {
                stream: 9,
                dim: 0,
                threshold: 4.4,
                eps: 0.5,
                times: vec![0.0, 0.5, 1.0],
            },
            Query::CountAbove { stream: 9, dim: 0, threshold: 0.0, eps: 0.1, times: vec![] },
            Query::Span { stream: 7 },
            Query::Streams,
        ]
    }

    pub(crate) fn sample_results() -> Vec<QueryResult> {
        vec![
            QueryResult::Value(4.5),
            QueryResult::ValueWithStats { value: f64::NEG_INFINITY, comparisons: 12 },
            QueryResult::Bounded(Bounded { value: 1.0, lo: 0.5, hi: 1.5 }),
            QueryResult::Range(RangeAggregate { min: 0.0, max: 5.0, integral: 20.0, mean: 2.5 }),
            QueryResult::BoundedRange(BoundedRange {
                min: Bounded { value: 0.0, lo: -0.5, hi: 0.5 },
                max: Bounded { value: 5.0, lo: 4.5, hi: 5.5 },
                integral: Bounded { value: 20.0, lo: 17.0, hi: 23.0 },
                mean: Bounded { value: 2.5, lo: 2.0, hi: 3.0 },
            }),
            QueryResult::Count(BoundedCount { definite: 1, possible: 2 }),
            QueryResult::Span(Some((0.0, 6.0))),
            QueryResult::Span(None),
            QueryResult::Streams(vec![1, 5, u64::MAX]),
            QueryResult::Streams(vec![]),
            QueryResult::Err(QueryError::DimensionMismatch { expected: 2, got: 3 }),
            QueryResult::Err(QueryError::BadDimension(7)),
            QueryResult::Err(QueryError::Uncovered { t: -1.0 }),
            QueryResult::Err(QueryError::EmptyGrid),
            QueryResult::Err(QueryError::InvalidEpsilon(-0.5)),
            QueryResult::Err(QueryError::UnknownStream(99)),
        ]
    }

    #[test]
    fn queries_round_trip() {
        for q in sample_queries() {
            let body = q.encode();
            assert_eq!(Query::decode(&body).unwrap(), q);
        }
    }

    #[test]
    fn results_round_trip() {
        for r in sample_results() {
            let body = r.encode();
            assert_eq!(QueryResult::decode(&body).unwrap(), r);
        }
    }

    #[test]
    fn nan_round_trips_bit_exactly() {
        // PartialEq can't see it (NaN != NaN), so compare the bits.
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        let body = QueryResult::Value(weird).encode();
        match QueryResult::decode(&body).unwrap() {
            QueryResult::Value(v) => assert_eq!(v.to_bits(), weird.to_bits()),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_are_typed() {
        let body = Query::Point { stream: 5, t: 1.5, dim: 0 }.encode();
        for cut in 0..body.len() {
            assert!(
                matches!(Query::decode(&body[..cut]), Err(WireError::Truncated(_))),
                "cut at {cut} must be Truncated"
            );
        }
        let mut long = body.to_vec();
        long.push(0);
        assert_eq!(Query::decode(&long), Err(WireError::Trailing(1)));

        assert_eq!(Query::decode(&[200]), Err(WireError::BadTag { what: "Query", tag: 200 }));
        assert_eq!(
            QueryResult::decode(&[200]),
            Err(WireError::BadTag { what: "QueryResult", tag: 200 })
        );
    }

    #[test]
    fn count_above_length_is_checked() {
        // A count promising more times than the body carries truncates.
        let mut body =
            Query::CountAbove { stream: 1, dim: 0, threshold: 0.0, eps: 0.5, times: vec![1.0] }
                .encode()
                .to_vec();
        let count_at = 1 + 8 + 4 + 8 + 8;
        body[count_at..count_at + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(Query::decode(&body), Err(WireError::Truncated(_))));
    }
}
