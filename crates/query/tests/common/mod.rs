//! Shared harness for the query-protocol integration suites: a
//! populated store, a representative query mix (including every typed
//! engine error), and a deterministic client/server drive loop on a
//! synthetic millisecond clock.

#![allow(dead_code)]

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pla_core::Segment;
use pla_ingest::{SegmentStore, StoreConfig, StreamId};
use pla_net::listen::Acceptor;
use pla_net::Redial;
use pla_query::{Outcome, Query, QueryClient, QueryResult, QueryServer, StoreQueryEngine};

pub fn seg(t0: f64, x0: f64, t1: f64, x1: f64) -> Segment {
    Segment {
        t_start: t0,
        x_start: [x0].into(),
        t_end: t1,
        x_end: [x1].into(),
        connected: false,
        n_points: 2,
        new_recordings: 2,
    }
}

/// Two shards, small seal threshold so lookups route through sealed
/// runs and the tail: stream 5 is the module-doc ramp/gap/plateau/
/// descent shape, stream 2 an identity ramp over several sealed runs,
/// stream 9 a disconnected jump.
pub fn sample_store() -> Arc<SegmentStore> {
    let store = SegmentStore::with_config(StoreConfig { shards: 2, seal_threshold: 2 });
    store.append(1, StreamId(5), seg(0.0, 0.0, 2.0, 2.0));
    // gap (2, 3)
    store.append(1, StreamId(5), seg(3.0, 5.0, 5.0, 5.0));
    store.append(1, StreamId(5), seg(5.0, 5.0, 6.0, 4.0));
    for i in 0..11 {
        let t = i as f64;
        store.append(1, StreamId(2), seg(t, t, t + 1.0, t + 1.0));
    }
    store.append(2, StreamId(9), seg(0.0, -1.0, 4.0, 3.0));
    store.append(2, StreamId(9), seg(4.0, 10.0, 8.0, 2.0));
    Arc::new(store)
}

/// Every query kind against [`sample_store`], plus one of each typed
/// engine error — a remote answer must reproduce refusals bit-exactly
/// too.
pub fn all_queries() -> Vec<Query> {
    vec![
        Query::Point { stream: 5, t: 1.0, dim: 0 },
        Query::Point { stream: 5, t: 2.5, dim: 0 }, // interpolates the gap
        Query::PointWithStats { stream: 2, t: 7.25, dim: 0 },
        Query::PointWithStats { stream: 5, t: 5.5, dim: 0 },
        Query::PointBounded { stream: 5, t: 4.0, dim: 0, eps: 0.5 },
        Query::Range { stream: 5, a: 0.0, b: 6.0, dim: 0 },
        Query::Range { stream: 9, a: 0.0, b: 8.0, dim: 0 },
        Query::RangeBounded { stream: 9, a: 1.0, b: 7.0, dim: 0, eps: 0.25 },
        Query::CountAbove {
            stream: 5,
            dim: 0,
            threshold: 4.4,
            eps: 0.5,
            times: vec![1.0, 4.0, 5.5],
        },
        Query::Span { stream: 9 },
        Query::Span { stream: 404 }, // absent stream: Span(None), not an error
        Query::Streams,
        Query::Point { stream: 99, t: 1.0, dim: 0 }, // UnknownStream
        Query::Point { stream: 5, t: -3.0, dim: 0 }, // Uncovered
        Query::Point { stream: 5, t: 1.0, dim: 7 },  // BadDimension
        Query::PointBounded { stream: 5, t: 1.0, dim: 0, eps: -1.0 }, // InvalidEpsilon
        Query::Range { stream: 5, a: 5.0, b: 1.0, dim: 0 }, // EmptyGrid
    ]
}

/// The local reference: what [`Query::run`] answers on the same store.
pub fn local_answers(store: &SegmentStore, queries: &[Query]) -> Vec<QueryResult> {
    let engine = StoreQueryEngine::new(store.snapshot());
    queries.iter().map(|q| q.run(&engine)).collect()
}

/// Bit-exact equality via the wire encoding — `PartialEq` on f64 can't
/// see NaN payloads or -0.0, the codec's `to_bits` round-trip can.
pub fn assert_bit_equal(got: &QueryResult, want: &QueryResult, context: &str) {
    assert_eq!(
        got.encode(),
        want.encode(),
        "{context}: remote answer must be bit-identical to the local engine\n\
         got:  {got:?}\nwant: {want:?}"
    );
}

/// Drives client and server rounds on a synthetic 1 ms clock until
/// every id in `ids` has completed (or panics after `max_rounds`).
/// Returns the outcomes keyed by `req_id`.
pub fn drive_to_completion<R: Redial, A: Acceptor>(
    client: &mut QueryClient<R>,
    server: &mut QueryServer<A>,
    start: Instant,
    ids: &[u64],
    max_rounds: usize,
) -> BTreeMap<u64, Outcome> {
    let mut now = start;
    let mut done = BTreeMap::new();
    for _ in 0..max_rounds {
        now += Duration::from_millis(1);
        client.pump_at(now);
        server.pump();
        for (id, out) in client.take_completed() {
            done.insert(id, out);
        }
        if ids.iter().all(|id| done.contains_key(id)) {
            return done;
        }
    }
    panic!(
        "query exchange failed to converge after {max_rounds} rounds \
         ({} of {} outcomes arrived)",
        done.len(),
        ids.len()
    );
}
