//! Property tests: every query bound must contain the ground truth, for
//! arbitrary streams, filters, and thresholds.

use proptest::prelude::*;

use pla_core::filters::{run_filter, SlideFilter, SwingFilter};
use pla_core::{Polyline, Signal};
use pla_query::QueryEngine;

fn signal_strategy() -> impl Strategy<Value = Signal> {
    (3usize..150, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        Signal::from_values(
            &(0..n)
                .map(|_| {
                    x += rnd() * 2.0;
                    x
                })
                .collect::<Vec<_>>(),
        )
    })
}

fn engine(signal: &Signal, eps: f64, slide: bool) -> QueryEngine {
    let segs = if slide {
        let mut f = SlideFilter::new(&[eps]).unwrap();
        run_filter(&mut f, signal).unwrap()
    } else {
        let mut f = SwingFilter::new(&[eps]).unwrap();
        run_filter(&mut f, signal).unwrap()
    };
    QueryEngine::new(Polyline::new(segs), &[eps]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aggregate bounds always contain the truth.
    #[test]
    fn aggregate_bounds_contain_truth(
        signal in signal_strategy(),
        eps in 0.1f64..5.0,
        use_slide in any::<bool>(),
    ) {
        let eng = engine(&signal, eps, use_slide);
        let times = signal.times();
        let n = signal.len() as f64;
        let truth_mean = (0..signal.len()).map(|j| signal.value(j, 0)).sum::<f64>() / n;
        let truth_min = (0..signal.len()).map(|j| signal.value(j, 0)).fold(f64::INFINITY, f64::min);
        let truth_max =
            (0..signal.len()).map(|j| signal.value(j, 0)).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(eng.mean(times, 0).unwrap().contains(truth_mean));
        prop_assert!(eng.min(times, 0).unwrap().contains(truth_min));
        prop_assert!(eng.max(times, 0).unwrap().contains(truth_max));
    }

    /// Count-above brackets always contain the truth, for any threshold.
    #[test]
    fn count_bounds_contain_truth(
        signal in signal_strategy(),
        eps in 0.1f64..5.0,
        threshold in -20.0f64..20.0,
    ) {
        let eng = engine(&signal, eps, true);
        let truth = (0..signal.len())
            .filter(|&j| signal.value(j, 0) > threshold)
            .count();
        let c = eng.count_above(signal.times(), 0, threshold).unwrap();
        prop_assert!(
            c.contains(truth),
            "truth {truth} outside [{}, {}] (ε={eps}, θ={threshold})",
            c.definite,
            c.possible
        );
        prop_assert!(c.definite <= c.possible);
    }

    /// Certain crossings never exceed true sign changes of (value − θ)
    /// outside the ambiguity band… every certain crossing is real.
    #[test]
    fn certain_crossings_are_sound(
        signal in signal_strategy(),
        eps in 0.1f64..2.0,
        threshold in -10.0f64..10.0,
    ) {
        use pla_query::CrossingKind;
        let eng = engine(&signal, eps, true);
        let crossings = eng.crossings(signal.times(), 0, threshold).unwrap();
        // Ground truth: sign changes of the original samples relative to
        // the threshold (samples exactly at θ break ties upward).
        let mut true_changes = 0usize;
        let mut prev_above = signal.value(0, 0) > threshold;
        for j in 1..signal.len() {
            let above = signal.value(j, 0) > threshold;
            if above != prev_above {
                true_changes += 1;
            }
            prev_above = above;
        }
        let certain = crossings.iter().filter(|c| c.kind == CrossingKind::Certain).count();
        prop_assert!(
            certain <= true_changes,
            "{certain} certain crossings but only {true_changes} true sign changes"
        );
    }

    /// Integral bounds contain the trapezoid truth of the samples.
    #[test]
    fn integral_bounds_contain_truth(signal in signal_strategy(), eps in 0.1f64..3.0) {
        let eng = engine(&signal, eps, true);
        let mut truth = 0.0;
        for j in 1..signal.len() {
            let dt = signal.times()[j] - signal.times()[j - 1];
            truth += 0.5 * (signal.value(j, 0) + signal.value(j - 1, 0)) * dt;
        }
        let (a, b) = (signal.times()[0], *signal.times().last().unwrap());
        let res = eng.integral(a, b, 0).unwrap();
        prop_assert!(res.contains(truth), "truth {truth} outside [{}, {}]", res.lo, res.hi);
    }
}
