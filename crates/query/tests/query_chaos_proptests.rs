//! Chaos battery for the query path: seeded fault storms (severs,
//! duplicate deliveries, mid-frame truncations, read delays) and
//! scripted silent wedges injected at exact frame indices while queries
//! are in flight. Reads are idempotent, so recovery is entirely the
//! client's redial + re-issue loop — and every completed answer must be
//! **bit-identical** to the fault-free run on the same store. The
//! regression tests at the bottom are the checked-in seed corpus.

mod common;

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pla_net::listen::MemoryAcceptor;
use pla_net::testutil::{Fault, FaultPlan, FaultRedial};
use pla_net::NetConfig;
use pla_query::{Outcome, QueryClient, QueryClientConfig, QueryResult, QueryServer, Response};

use common::{all_queries, assert_bit_equal, local_answers, sample_store};

/// Frame-index horizon for seeded plans: the Hello is frame 0, then one
/// frame per pipelined request — the full workload fits inside it, so
/// faults land on live traffic, not after it.
const FAULT_HORIZON: u64 = 18;
const LINK_CAPACITY: usize = 4096;

/// Client timing for the synthetic 1 ms clock: a wedged link burns a
/// 40 ms deadline, and the generous attempt budget means a storm can
/// never exhaust a request before the plan queue runs dry and the link
/// goes clean.
fn chaos_config() -> QueryClientConfig {
    QueryClientConfig {
        net: NetConfig::default(),
        request_timeout: Duration::from_millis(40),
        max_attempts: 16,
        redial_initial: Duration::from_millis(1),
        redial_cap: Duration::from_millis(8),
    }
}

/// Seed → this connection's fault-plan queue, exactly like the session
/// suite: 0 is a healthy link, anything else two seeded storms before
/// the queue runs dry and redials go clean — every schedule converges.
fn plans_from_seed(seed: u64) -> Vec<FaultPlan> {
    if seed == 0 {
        vec![FaultPlan::none()]
    } else {
        vec![
            FaultPlan::seeded(seed, FAULT_HORIZON),
            FaultPlan::seeded(seed ^ 0xA5A5_A5A5, FAULT_HORIZON),
        ]
    }
}

/// Runs the whole query mix through one faulted client, optionally
/// wedging the active link at scripted rounds, and returns the
/// outcomes. Panics if the run fails to converge.
fn run_chaos(plans: Vec<FaultPlan>, wedge_rounds: &[usize]) -> BTreeMap<u64, Outcome> {
    let store = sample_store();
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store, NetConfig::default());
    let redial = FaultRedial::new(connector, LINK_CAPACITY, plans);
    let mut client = QueryClient::new(redial, chaos_config());

    let t0 = Instant::now();
    let queries = all_queries();
    let ids: Vec<u64> = queries.iter().map(|q| client.submit(q.clone(), t0)).collect();

    let mut now = t0;
    let mut done = BTreeMap::new();
    for round in 0..50_000 {
        now += Duration::from_millis(1);
        if wedge_rounds.contains(&round) {
            client.redial().wedge_active();
        }
        client.pump_at(now);
        server.pump();
        for (id, out) in client.take_completed() {
            done.insert(id, out);
        }
        if ids.iter().all(|id| done.contains_key(id)) {
            assert!(
                client.failure().is_none(),
                "the fault vocabulary must never terminally fail the client: {:?}",
                client.failure()
            );
            return done;
        }
    }
    panic!("chaos run failed to converge ({} of {} outcomes)", done.len(), ids.len());
}

/// Every outcome must be the fault-free answer, bit for bit. (With a
/// converging plan queue and an ample attempt budget, typed timeouts
/// are legal mid-run but cannot be the *final* outcome — the clean
/// redial always lands inside the attempt budget.)
fn assert_bit_identical_to_fault_free(done: &BTreeMap<u64, Outcome>) {
    let store = sample_store();
    let queries = all_queries();
    let reference = local_answers(&store, &queries);
    assert_eq!(done.len(), queries.len());
    // req_ids are minted 1.. in submission order.
    for (i, (query, want)) in queries.iter().zip(&reference).enumerate() {
        let id = i as u64 + 1;
        match &done[&id] {
            Ok(Response::Result(got)) => assert_bit_equal(got, want, &format!("{query:?}")),
            other => panic!("under chaos, {query:?} must still answer; got {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded storms: severs, duplicates, truncations, and delays at
    /// arbitrary frame indices during in-flight queries. After however
    /// many redials, every answer is bit-identical to the fault-free
    /// run.
    #[test]
    fn fault_storms_preserve_bit_identical_answers(seed in 0u64..1_000_000) {
        let done = run_chaos(plans_from_seed(seed), &[]);
        assert_bit_identical_to_fault_free(&done);
    }

    /// Silent wedges at arbitrary rounds on top of a seeded storm: the
    /// failure mode only the per-request deadline can detect. The
    /// deadline declares the link suspect, redials, re-issues — and the
    /// answers still match bit for bit.
    #[test]
    fn wedges_mid_flight_recover_through_deadlines(
        seed in 0u64..1_000_000,
        wedge_round in 1usize..40,
    ) {
        let done = run_chaos(plans_from_seed(seed), &[wedge_round]);
        assert_bit_identical_to_fault_free(&done);
    }
}

// --- checked-in regression corpus ----------------------------------------

/// The very first dial's `Hello` never arrives: back off, redial,
/// converge.
#[test]
fn regression_hello_severed_on_first_dial() {
    let plans = vec![FaultPlan::new(vec![Fault::Sever { frame: 0 }])];
    assert_bit_identical_to_fault_free(&run_chaos(plans, &[]));
}

/// A duplicated request plus a mid-frame truncation on the same link:
/// the server answers the duplicate a second time (dup-dropped by the
/// client), the torn frame kills the connection, the redial re-issues.
#[test]
fn regression_duplicate_then_midframe_truncate() {
    let plans = vec![FaultPlan::new(vec![
        Fault::Duplicate { frame: 2 },
        Fault::Truncate { frame: 7, keep: 9 },
    ])];
    assert_bit_identical_to_fault_free(&run_chaos(plans, &[]));
}

/// Read stalls across the response burst: transient latency must never
/// be confused with loss.
#[test]
fn regression_delayed_reads_are_not_loss() {
    let plans = vec![FaultPlan::new(vec![
        Fault::Delay { read_call: 1, rounds: 4 },
        Fault::Delay { read_call: 9, rounds: 3 },
    ])];
    let done = run_chaos(plans, &[]);
    assert_bit_identical_to_fault_free(&done);
}

/// A wedge scripted *by frame index* (the plan's own vocabulary) right
/// in the middle of the pipelined burst.
#[test]
fn regression_wedge_at_frame_five() {
    let plans = vec![FaultPlan::new(vec![Fault::Wedge { frame: 5 }])];
    assert_bit_identical_to_fault_free(&run_chaos(plans, &[]));
}

/// Two storms back to back, then clean — plus an explicit wedge while
/// the second storm is live. The seeds are the ones that drove this
/// suite's development, kept verbatim.
#[test]
fn regression_seed_corpus_storms() {
    for seed in [42u64, 1337, 271_828, 314_159, 577_215, 662_607] {
        let done = run_chaos(plans_from_seed(seed), &[]);
        assert_bit_identical_to_fault_free(&done);
    }
    for (seed, wedge_round) in [(7u64, 3usize), (999_983, 11), (161_803, 27)] {
        let done = run_chaos(plans_from_seed(seed), &[wedge_round]);
        assert_bit_identical_to_fault_free(&done);
    }
}

/// Chaos on the wire must stay contained to connections: across the
/// whole corpus the server never sees a malformed *body* decode into a
/// wrong answer (bit-identity above) and keeps accepting fresh dials.
#[test]
fn regression_server_survives_every_corpus_storm() {
    let store = sample_store();
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store, NetConfig::default());
    let queries = all_queries();
    let reference = local_answers(server.store(), &queries);

    for seed in [42u64, 7, 1337, 999_983] {
        let redial = FaultRedial::new(connector.clone(), LINK_CAPACITY, plans_from_seed(seed));
        let mut client = QueryClient::new(redial, chaos_config());
        let t0 = Instant::now();
        let ids: Vec<u64> = queries.iter().map(|q| client.submit(q.clone(), t0)).collect();
        let mut now = t0;
        let mut done = BTreeMap::new();
        for _ in 0..50_000 {
            now += Duration::from_millis(1);
            client.pump_at(now);
            server.pump();
            for (id, out) in client.take_completed() {
                done.insert(id, out);
            }
            if ids.iter().all(|id| done.contains_key(id)) {
                break;
            }
        }
        for ((id, query), want) in ids.iter().zip(&queries).zip(&reference) {
            match &done[id] {
                Ok(Response::Result(got)) => assert_bit_equal(got, want, &format!("{query:?}")),
                other => panic!("client (seed {seed}) lost {query:?}: {other:?}"),
            }
        }
        // Hang up this client's surviving link so the server reaps it —
        // a memory pipe has no peer-drop signal, only resets.
        client.redial().sever_active();
        server.pump();
    }
    let stats = server.stats();
    assert!(stats.accepted >= 4, "every client got at least one connection");
    assert_eq!(stats.connections, 0, "dead connections are reaped, not leaked");
    // Engine errors in the mix answered every time; the server's typed
    // refusal path kept working across every storm.
    let errors_per_run =
        reference.iter().filter(|r| matches!(r, QueryResult::Err(_))).count() as u64;
    assert!(stats.errors >= 4 * errors_per_run);
}
