//! Epoch cache validation over the wire: a stale-epoch read after new
//! segments land must refresh exactly the shards whose epoch moved —
//! entries on quiet shards keep serving locally, whole-store entries
//! (`Streams`) drop on any movement, and observed epoch vectors are
//! monotone for the lifetime of one server.

mod common;

use std::sync::Arc;
use std::time::Instant;

use pla_ingest::{shard_of, SegmentStore, StoreConfig, StreamId};
use pla_net::listen::MemoryAcceptor;
use pla_net::{MemoryRedial, NetConfig};
use pla_query::{
    Cached, Outcome, Query, QueryClient, QueryClientConfig, QueryResult, QueryServer, Response,
    SnapshotCache,
};

use common::{assert_bit_equal, drive_to_completion, seg};

const SHARDS: usize = 2;

/// Two stream ids guaranteed to live on different store shards.
fn streams_on_both_shards() -> (u64, u64) {
    let a = 1u64;
    let shard_a = shard_of(StreamId(a), SHARDS);
    let b = (2..100)
        .find(|&id| shard_of(StreamId(id), SHARDS) != shard_a)
        .expect("some id below 100 hashes to the other shard");
    (a, b)
}

fn epochs_of(out: &Outcome) -> Vec<u64> {
    match out {
        Ok(Response::Epochs(e)) => e.clone(),
        other => panic!("expected an epochs response, got {other:?}"),
    }
}

#[test]
fn moved_shards_invalidate_exactly_their_entries() {
    let (a, b) = streams_on_both_shards();
    let store = SegmentStore::with_config(StoreConfig { shards: SHARDS, seal_threshold: 2 });
    for i in 0..4 {
        let t = i as f64;
        store.append(1, StreamId(a), seg(t, t, t + 1.0, t + 1.0));
        store.append(1, StreamId(b), seg(t, -t, t + 1.0, -t - 1.0));
    }
    let store = Arc::new(store);

    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store.clone(), NetConfig::default());
    let mut client =
        QueryClient::new(MemoryRedial::new(connector, 1 << 16), QueryClientConfig::default());

    let t0 = Instant::now();

    // Before the first successful probe there is nothing to validate
    // against: submits go remote and nothing is cached.
    let span_a = Query::Span { stream: a };
    let Cached::Sent(warmup) = client.submit_cached(span_a.clone(), t0) else {
        panic!("an unvalidated cache can never hit");
    };
    let done = drive_to_completion(&mut client, &mut server, t0, &[warmup], 1_000);
    assert!(matches!(&done[&warmup], Ok(Response::Result(_))));
    assert!(client.cache().is_empty(), "answers are only cached under a known epoch vector");

    // Validate, then populate: one per-shard entry each, plus the
    // whole-store Streams entry.
    let p0 = client.probe_epochs(t0);
    let done = drive_to_completion(&mut client, &mut server, t0, &[p0], 1_000);
    let e0 = epochs_of(&done[&p0]);
    assert_eq!(e0.len(), SHARDS);
    assert!(client.cache().validated());

    let point_b = Query::Point { stream: b, t: 1.5, dim: 0 };
    let ids: Vec<u64> = [span_a.clone(), point_b.clone(), Query::Streams]
        .into_iter()
        .map(|q| match client.submit_cached(q, t0) {
            Cached::Sent(id) => id,
            Cached::Hit(r) => panic!("nothing cached yet, got hit {r:?}"),
        })
        .collect();
    drive_to_completion(&mut client, &mut server, t0, &ids, 1_000);
    assert_eq!(client.cache().len(), 3);
    let stale_span = match client.submit_cached(span_a.clone(), t0) {
        Cached::Hit(r) => r,
        Cached::Sent(_) => panic!("a validated cache must serve the span locally"),
    };
    assert_eq!(client.stats().cache_hits, 1);

    // New segments land on stream a's shard only.
    store.append(1, StreamId(a), seg(4.0, 4.0, 6.0, 6.0));
    let shard_a = shard_of(StreamId(a), SHARDS);

    // The next probe revalidates: span(a) and Streams drop, point(b)
    // survives.
    let requests_before = server.stats().requests;
    let p1 = client.probe_epochs(t0);
    let done = drive_to_completion(&mut client, &mut server, t0, &[p1], 1_000);
    let e1 = epochs_of(&done[&p1]);
    assert_eq!(e1.len(), e0.len(), "shard count is stable for one server");
    assert!(e0.iter().zip(&e1).all(|(old, new)| new >= old), "epochs are monotone");
    assert!(e1[shard_a] > e0[shard_a], "stream a's shard must have moved");
    for (shard, (old, new)) in e0.iter().zip(&e1).enumerate() {
        if shard != shard_a {
            assert_eq!(old, new, "quiet shards must not move");
        }
    }
    assert_eq!(client.stats().cache_invalidations, 2, "span(a) and Streams drop, nothing else");
    assert_eq!(client.cache().len(), 1);

    // The surviving entry still hits; the dropped one re-fetches and
    // sees the new tail.
    match client.submit_cached(point_b.clone(), t0) {
        Cached::Hit(r) => {
            let engine = pla_query::StoreQueryEngine::new(store.snapshot());
            assert_bit_equal(&r, &point_b.run(&engine), "surviving cache entry");
        }
        Cached::Sent(_) => panic!("the quiet shard's entry must survive revalidation"),
    }
    assert_eq!(server.stats().requests, requests_before, "hits never touch the wire");

    let Cached::Sent(refetch) = client.submit_cached(span_a, t0) else {
        panic!("the moved shard's entry must have been dropped");
    };
    let done = drive_to_completion(&mut client, &mut server, t0, &[refetch], 1_000);
    match &done[&refetch] {
        Ok(Response::Result(QueryResult::Span(Some((lo, hi))))) => {
            assert_eq!((*lo, *hi), (0.0, 6.0), "the refreshed span must cover the new tail");
        }
        other => panic!("expected the refreshed span, got {other:?}"),
    }
    assert_ne!(
        QueryResult::Span(Some((0.0, 6.0))).encode(),
        stale_span.encode(),
        "the refetch observably differs from the stale answer"
    );

    // A quiet re-probe invalidates nothing.
    let p2 = client.probe_epochs(t0);
    let done = drive_to_completion(&mut client, &mut server, t0, &[p2], 1_000);
    let e2 = epochs_of(&done[&p2]);
    assert_eq!(e1, e2, "no writes, no movement");
    assert_eq!(client.stats().cache_invalidations, 2);
    assert_eq!(server.stats().epoch_probes, 3);
}

#[test]
fn epoch_regression_or_reshard_drops_the_whole_cache() {
    // Direct SnapshotCache exercise: a replaced server shows up as an
    // epoch decrease or a shard-count change — either way every cached
    // answer is untrustworthy.
    let q_a = Query::Span { stream: 1 };
    let q_b = Query::Streams;

    let mut cache = SnapshotCache::default();
    assert!(!cache.validated());
    cache.insert(&q_a, QueryResult::Value(1.0));
    assert!(cache.is_empty(), "inserts before validation are dropped");

    assert_eq!(cache.revalidate(&[3, 7]), 0);
    cache.insert(&q_a, QueryResult::Value(1.0));
    cache.insert(&q_b, QueryResult::Streams(vec![1]));
    assert_eq!(cache.len(), 2);

    // An epoch running backwards: everything drops.
    assert_eq!(cache.revalidate(&[3, 6]), 2);
    assert!(cache.is_empty());
    assert_eq!(cache.epochs(), &[3, 6]);

    cache.insert(&q_a, QueryResult::Value(2.0));
    assert_eq!(cache.len(), 1);
    // A shard-count change: everything drops.
    assert_eq!(cache.revalidate(&[3, 6, 0]), 1);
    assert!(cache.is_empty());
    assert_eq!(cache.epochs(), &[3, 6, 0]);

    // Identical epochs: nothing drops.
    cache.insert(&q_a, QueryResult::Value(3.0));
    assert_eq!(cache.revalidate(&[3, 6, 0]), 0);
    assert_eq!(cache.get(&q_a), Some(&QueryResult::Value(3.0)));
}
