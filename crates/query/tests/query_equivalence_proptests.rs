//! Remote ≡ local equivalence: for arbitrary store contents and
//! arbitrary query workloads, every answer that crosses the wire must
//! be **bit-identical** (per the codec's `f64::to_bits` round-trip) to
//! what `StoreQueryEngine` answers locally on the same snapshot —
//! including the ±ε bounded variants, `point_with_stats` comparison
//! counts, and every typed engine refusal.

mod common;

use std::sync::Arc;
use std::time::Instant;

use proptest::prelude::*;

use pla_ingest::{SegmentStore, StoreConfig, StreamId};
use pla_net::listen::MemoryAcceptor;
use pla_net::{MemoryRedial, NetConfig};
use pla_query::{Query, QueryClient, QueryClientConfig, QueryServer, Response};

use common::{assert_bit_equal, drive_to_completion, local_answers, seg};

/// Stream ids the generated stores may populate; queries also draw the
/// never-populated 42 so `UnknownStream` refusals cross the wire.
const STREAM_POOL: [u64; 4] = [1, 2, 3, 8];

/// Per-stream segment logs on a fixed monotone grid with arbitrary
/// values and per-segment gaps, so points can land inside segments,
/// inside gaps, and outside coverage.
fn store_strategy() -> impl Strategy<Value = Vec<(u64, Vec<(f64, f64)>)>> {
    let endpoints = prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 0..4);
    prop::collection::vec(endpoints, STREAM_POOL.len())
        .prop_map(|per_stream| STREAM_POOL.iter().copied().zip(per_stream).collect())
}

fn build_store(logs: &[(u64, Vec<(f64, f64)>)]) -> Arc<SegmentStore> {
    let store = SegmentStore::with_config(StoreConfig { shards: 2, seal_threshold: 2 });
    for (stream, endpoints) in logs {
        for (i, &(x0, x1)) in endpoints.iter().enumerate() {
            // Segment i covers [4i, 4i+2]; (4i+2, 4i+4) is a gap.
            let t = i as f64 * 4.0;
            store.append(1, StreamId(*stream), seg(t, x0, t + 2.0, x1));
        }
    }
    Arc::new(store)
}

fn arb_query() -> impl Strategy<Value = Query> {
    let stream = || prop_oneof![Just(1u64), Just(2), Just(3), Just(8), Just(42)];
    let t = || -2.0f64..18.0f64;
    let dim = || 0u32..3u32;
    // Includes an invalid epsilon so InvalidEpsilon refusals ride back.
    let eps = || prop_oneof![Just(-0.25f64), Just(0.0), 1e-6f64..1.0];
    prop_oneof![
        (stream(), t(), dim()).prop_map(|(stream, t, dim)| Query::Point { stream, t, dim }),
        (stream(), t(), dim()).prop_map(|(stream, t, dim)| Query::PointWithStats {
            stream,
            t,
            dim
        }),
        (stream(), t(), dim(), eps()).prop_map(|(stream, t, dim, eps)| Query::PointBounded {
            stream,
            t,
            dim,
            eps
        }),
        // a > b is generated too: EmptyGrid refusals must round-trip.
        (stream(), t(), t(), dim()).prop_map(|(stream, a, b, dim)| Query::Range {
            stream,
            a,
            b,
            dim
        }),
        (stream(), t(), t(), dim(), eps())
            .prop_map(|(stream, a, b, dim, eps)| Query::RangeBounded { stream, a, b, dim, eps }),
        (stream(), dim(), t(), eps(), prop::collection::vec(-2.0f64..18.0, 0..6)).prop_map(
            |(stream, dim, threshold, eps, times)| Query::CountAbove {
                stream,
                dim,
                threshold,
                eps,
                times
            }
        ),
        stream().prop_map(|stream| Query::Span { stream }),
        Just(Query::Streams),
    ]
}

/// Ships `queries` through a fresh client/server pair over `store` and
/// asserts bit-identity against the local engine, answer by answer.
fn assert_remote_equals_local(store: Arc<SegmentStore>, queries: &[Query]) {
    let reference = local_answers(&store, queries);
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store, NetConfig::default());
    let mut client =
        QueryClient::new(MemoryRedial::new(connector, 1 << 16), QueryClientConfig::default());

    let t0 = Instant::now();
    let ids: Vec<u64> = queries.iter().map(|q| client.submit(q.clone(), t0)).collect();
    let done = drive_to_completion(&mut client, &mut server, t0, &ids, 20_000);

    for ((id, query), want) in ids.iter().zip(queries).zip(&reference) {
        match &done[id] {
            Ok(Response::Result(got)) => assert_bit_equal(got, want, &format!("{query:?}")),
            other => panic!("query {query:?} must answer, got {other:?}"),
        }
    }
    assert_eq!(server.stats().requests, queries.len() as u64);
    assert_eq!(client.stats().timeouts, 0, "a healthy loopback never times out");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The flagship equivalence property: arbitrary store × arbitrary
    /// pipelined workload, every wire answer bit-equal to the local
    /// engine's.
    #[test]
    fn remote_answers_are_bit_identical_to_local(
        logs in store_strategy(),
        queries in prop::collection::vec(arb_query(), 1..24),
    ) {
        assert_remote_equals_local(build_store(&logs), &queries);
    }

    /// Focused bounded-variant sweep: the ±ε arithmetic happens only on
    /// the server; the wire must carry the exact bounds, and
    /// `point_with_stats` must report the *server's* comparison count
    /// unchanged.
    #[test]
    fn bounded_variants_and_stats_survive_the_wire(
        logs in store_strategy(),
        probes in prop::collection::vec((-2.0f64..18.0, 1e-6f64..2.0), 1..12),
    ) {
        let queries: Vec<Query> = probes
            .iter()
            .flat_map(|&(t, eps)| {
                STREAM_POOL.iter().flat_map(move |&stream| {
                    [
                        Query::PointBounded { stream, t, dim: 0, eps },
                        Query::PointWithStats { stream, t, dim: 0 },
                        Query::RangeBounded { stream, a: t, b: t + 3.0, dim: 0, eps },
                    ]
                })
            })
            .collect();
        assert_remote_equals_local(build_store(&logs), &queries);
    }
}
