//! Golden wire-format pin for the query protocol: the exact bytes of
//! every query-plane frame kind — `QueryReq` carrying each query
//! variant, `QueryResp` carrying each result variant (including every
//! typed engine error), `EpochsReq`/`EpochsResp`, and the version-2
//! handshake pair — are checked into `golden_query_frames.bin`. The
//! encoding is a wire contract between deployed speakers: any byte
//! change here must come with a `PROTOCOL_VERSION` bump so old and new
//! speakers refuse each other cleanly instead of misreading frames.
//!
//! Deliberate-update path:
//! `cargo test -p pla-query --test query_golden_frames -- --ignored regenerate_golden`

use bytes::BytesMut;

use pla_net::frame::{encode, FrameDecoder, NetFrame, PROTOCOL_VERSION};
use pla_query::{
    Bounded, BoundedCount, BoundedRange, Query, QueryError, QueryResult, RangeAggregate,
};

const GOLDEN: &[u8] = include_bytes!("golden_query_frames.bin");

/// Every query-plane frame with fixed, representative field values —
/// edge values included (`u64::MAX` ids, negative zero, empty vectors).
fn golden_frames() -> Vec<NetFrame> {
    let queries = vec![
        Query::Point { stream: 5, t: 1.5, dim: 0 },
        Query::PointWithStats { stream: u64::MAX, t: -0.0, dim: 3 },
        Query::PointBounded { stream: 1, t: 2.25, dim: 0, eps: 0.25 },
        Query::Range { stream: 2, a: 0.0, b: 6.0, dim: 1 },
        Query::RangeBounded { stream: 2, a: -1.0, b: 1.0, dim: 0, eps: 1e-9 },
        Query::CountAbove {
            stream: 9,
            dim: 0,
            threshold: 4.4,
            eps: 0.5,
            times: vec![0.0, 0.5, 1.0],
        },
        Query::CountAbove { stream: 9, dim: 0, threshold: 0.0, eps: 0.1, times: vec![] },
        Query::Span { stream: 7 },
        Query::Streams,
    ];
    let results = vec![
        QueryResult::Value(4.5),
        QueryResult::ValueWithStats { value: f64::NEG_INFINITY, comparisons: 12 },
        QueryResult::Bounded(Bounded { value: 1.0, lo: 0.5, hi: 1.5 }),
        QueryResult::Range(RangeAggregate { min: 0.0, max: 5.0, integral: 20.0, mean: 2.5 }),
        QueryResult::BoundedRange(BoundedRange {
            min: Bounded { value: 0.0, lo: -0.5, hi: 0.5 },
            max: Bounded { value: 5.0, lo: 4.5, hi: 5.5 },
            integral: Bounded { value: 20.0, lo: 17.0, hi: 23.0 },
            mean: Bounded { value: 2.5, lo: 2.0, hi: 3.0 },
        }),
        QueryResult::Count(BoundedCount { definite: 1, possible: 2 }),
        QueryResult::Span(Some((0.0, 6.0))),
        QueryResult::Span(None),
        QueryResult::Streams(vec![1, 5, u64::MAX]),
        QueryResult::Streams(vec![]),
        QueryResult::Err(QueryError::DimensionMismatch { expected: 2, got: 3 }),
        QueryResult::Err(QueryError::BadDimension(7)),
        QueryResult::Err(QueryError::Uncovered { t: -1.0 }),
        QueryResult::Err(QueryError::EmptyGrid),
        QueryResult::Err(QueryError::InvalidEpsilon(-0.5)),
        QueryResult::Err(QueryError::UnknownStream(99)),
    ];

    let mut frames = vec![
        NetFrame::Hello { version: PROTOCOL_VERSION, token: 0 },
        NetFrame::HelloAck {
            version: PROTOCOL_VERSION,
            token: 0x1122_3344_5566_7788,
            cursors: vec![],
        },
    ];
    frames.extend(
        queries
            .into_iter()
            .enumerate()
            .map(|(i, q)| NetFrame::QueryReq { req_id: i as u64 + 1, body: q.encode() }),
    );
    frames.extend(
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| NetFrame::QueryResp { req_id: i as u64 + 1, body: r.encode() }),
    );
    frames.push(NetFrame::EpochsReq { req_id: u64::MAX });
    frames.push(NetFrame::EpochsResp { req_id: 100, epochs: vec![0, 3, u64::MAX] });
    frames.push(NetFrame::EpochsResp { req_id: 101, epochs: vec![] });
    frames
}

fn encode_all() -> Vec<u8> {
    let mut buf = BytesMut::new();
    for frame in golden_frames() {
        encode(&frame, &mut buf);
    }
    buf.to_vec()
}

#[test]
fn wire_encoding_matches_the_golden_file() {
    assert_eq!(
        encode_all(),
        GOLDEN,
        "query wire bytes are a versioned contract; if this change is deliberate, bump \
         pla_net::frame::PROTOCOL_VERSION and regenerate tests/golden_query_frames.bin \
         with the #[ignore] regenerate_golden test"
    );
}

/// The version the golden bytes were captured under. A version bump
/// without a regenerated fixture (or vice versa) fails here.
#[test]
fn golden_file_is_for_protocol_version_2() {
    assert_eq!(PROTOCOL_VERSION, 2, "regenerate the golden file when the version moves");
    // The Hello's version field lives right after the 4-byte length and
    // 1-byte kind: pin it in the raw bytes too.
    assert_eq!(&GOLDEN[5..7], &2u16.to_le_bytes(), "golden Hello must advertise version 2");
}

#[test]
fn golden_file_redecodes_losslessly() {
    let mut decoder = FrameDecoder::new(1 << 20);
    decoder.extend(GOLDEN);
    let mut decoded = Vec::new();
    while let Some(frame) = decoder.try_next().expect("golden bytes decode") {
        decoded.push(frame);
    }
    assert_eq!(decoded, golden_frames(), "decode(golden) must reproduce the frames exactly");
}

/// Deliberate-update path for the wire contract.
#[test]
#[ignore]
fn regenerate_golden() {
    std::fs::write("tests/golden_query_frames.bin", encode_all()).unwrap();
}
