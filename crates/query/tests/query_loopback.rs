//! Loopback acceptance for the remote query protocol: a `QueryClient`
//! and `QueryServer` over in-memory links must answer every query kind
//! bit-identically to the local `StoreQueryEngine`, refuse mismatched
//! protocol versions cleanly in both directions, echo heartbeats,
//! absorb duplicate and out-of-order responses, and convert a silent
//! server into a typed timeout.

mod common;

use std::time::{Duration, Instant};

use bytes::BytesMut;

use pla_net::frame::{encode, FrameDecoder, NetFrame, PROTOCOL_VERSION};
use pla_net::listen::{Acceptor, MemoryAcceptor};
use pla_net::{Link, MemoryRedial, NetConfig};
use pla_query::{
    ClientError, Outcome, Query, QueryClient, QueryClientConfig, QueryResult, QueryServer, Response,
};

use common::{all_queries, assert_bit_equal, drive_to_completion, local_answers, sample_store};

fn loopback() -> (QueryClient<MemoryRedial>, QueryServer<MemoryAcceptor>) {
    let store = sample_store();
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let server = QueryServer::new(acceptor, store, NetConfig::default());
    let client =
        QueryClient::new(MemoryRedial::new(connector, 1 << 16), QueryClientConfig::default());
    (client, server)
}

fn unwrap_result(out: &Outcome) -> &QueryResult {
    match out {
        Ok(Response::Result(r)) => r,
        other => panic!("expected a query result, got {other:?}"),
    }
}

#[test]
fn every_query_kind_answers_bit_identically_to_the_local_engine() {
    let (mut client, mut server) = loopback();
    let queries = all_queries();
    let reference = local_answers(server.store(), &queries);

    let t0 = Instant::now();
    let ids: Vec<u64> = queries.iter().map(|q| client.submit(q.clone(), t0)).collect();
    let done = drive_to_completion(&mut client, &mut server, t0, &ids, 10_000);

    for ((id, query), want) in ids.iter().zip(&queries).zip(&reference) {
        let got = unwrap_result(&done[id]);
        assert_bit_equal(got, want, &format!("query {query:?}"));
    }

    // The error-path queries really exercised the typed-refusal path.
    let errors = reference.iter().filter(|r| matches!(r, QueryResult::Err(_))).count();
    assert!(errors >= 5, "the mix must include every typed engine error");

    let stats = server.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.requests, queries.len() as u64);
    assert_eq!(stats.errors, errors as u64);
    assert_eq!(stats.latency.count, queries.len() as u64);
    assert_eq!(stats.refused + stats.malformed, 0);
    // A static store snapshots exactly once however many queries arrive.
    assert_eq!(stats.rebuilds, 1);

    let cs = client.stats();
    assert_eq!((cs.dials, cs.established), (1, 1));
    assert_eq!((cs.retransmits, cs.dup_drops, cs.timeouts), (0, 0, 0));
    assert!(client.is_idle());
}

#[test]
fn server_refuses_old_speakers_with_a_zero_token_ack() {
    let store = sample_store();
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store, NetConfig::default());

    // An old speaker dials in and offers the previous protocol version.
    let mut link = connector.connect(1 << 16);
    let mut buf = BytesMut::new();
    encode(&NetFrame::Hello { version: PROTOCOL_VERSION - 1, token: 0 }, &mut buf);
    link.try_write(&buf).unwrap();
    server.pump();

    let mut decoder = FrameDecoder::new(NetConfig::default().max_frame);
    let mut chunk = [0u8; 4096];
    let n = link.try_read(&mut chunk).unwrap();
    decoder.extend(&chunk[..n]);
    match decoder.try_next().unwrap() {
        Some(NetFrame::HelloAck { version, token, .. }) => {
            assert_eq!(version, PROTOCOL_VERSION, "refusal advertises what we do speak");
            assert_eq!(token, 0, "token 0 is the refusal");
        }
        other => panic!("expected a refusal HelloAck, got {other:?}"),
    }
    assert_eq!(server.stats().refused, 1);
    // The refused connection is gone; the server keeps serving.
    server.pump();
    assert_eq!(server.stats().connections, 0);
}

#[test]
fn non_hello_first_frame_kills_only_that_connection() {
    let store = sample_store();
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store, NetConfig::default());

    let mut link = connector.connect(1 << 16);
    let mut buf = BytesMut::new();
    encode(&NetFrame::EpochsReq { req_id: 1 }, &mut buf);
    link.try_write(&buf).unwrap();
    server.pump();
    server.pump();

    assert_eq!(server.stats().refused, 1);
    assert_eq!(server.stats().connections, 0);

    // A well-behaved client still gets served afterwards.
    let mut client =
        QueryClient::new(MemoryRedial::new(connector, 1 << 16), QueryClientConfig::default());
    let t0 = Instant::now();
    let id = client.submit(Query::Streams, t0);
    let done = drive_to_completion(&mut client, &mut server, t0, &[id], 1_000);
    assert_bit_equal(
        unwrap_result(&done[&id]),
        &QueryResult::Streams(vec![2, 5, 9]),
        "post-refusal client",
    );
}

#[test]
fn client_turns_a_refusal_into_a_typed_terminal_error() {
    // A fake *old* server: acks the handshake with its own (previous)
    // version and token 0 — the refusal a version-1 listener sends a
    // version-2 dialer.
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut acceptor = acceptor;
    let mut client =
        QueryClient::new(MemoryRedial::new(connector, 1 << 16), QueryClientConfig::default());

    let t0 = Instant::now();
    let id_a = client.submit(Query::Streams, t0);
    let id_b = client.probe_epochs(t0);
    client.pump_at(t0); // dials + stages Hello and both requests

    let mut served = acceptor.try_accept().unwrap().expect("client dialed");
    let mut chunk = [0u8; 4096];
    let n = served.try_read(&mut chunk).unwrap();
    let mut decoder = FrameDecoder::new(NetConfig::default().max_frame);
    decoder.extend(&chunk[..n]);
    match decoder.try_next().unwrap() {
        Some(NetFrame::Hello { version, .. }) => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected the client's Hello, got {other:?}"),
    }
    let mut buf = BytesMut::new();
    encode(
        &NetFrame::HelloAck { version: PROTOCOL_VERSION - 1, token: 0, cursors: vec![] },
        &mut buf,
    );
    served.try_write(&buf).unwrap();

    client.pump_at(t0 + Duration::from_millis(1));
    let refused = ClientError::Refused { server_version: PROTOCOL_VERSION - 1 };
    assert_eq!(client.failure(), Some(&refused));
    // Every pending request completes with the same terminal error…
    assert_eq!(client.take_outcome(id_a), Some(Err(refused.clone())));
    assert_eq!(client.take_outcome(id_b), Some(Err(refused.clone())));
    // …and the client stops dialing for good.
    let dials = client.stats().dials;
    let id_c = client.submit(Query::Streams, t0 + Duration::from_millis(2));
    client.pump_at(t0 + Duration::from_millis(2));
    assert_eq!(client.stats().dials, dials, "a refused client must not dial again");
    assert!(client.take_outcome(id_c).is_none());
}

#[test]
fn heartbeats_echo_on_a_bound_connection() {
    let store = sample_store();
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store, NetConfig::default());

    let mut link = connector.connect(1 << 16);
    let mut buf = BytesMut::new();
    encode(&NetFrame::Hello { version: PROTOCOL_VERSION, token: 0 }, &mut buf);
    encode(&NetFrame::Heartbeat { seq: 7 }, &mut buf);
    link.try_write(&buf).unwrap();
    server.pump();

    let mut decoder = FrameDecoder::new(NetConfig::default().max_frame);
    let mut chunk = [0u8; 4096];
    let n = link.try_read(&mut chunk).unwrap();
    decoder.extend(&chunk[..n]);
    let ack = decoder.try_next().unwrap().expect("HelloAck first");
    assert!(matches!(ack, NetFrame::HelloAck { token, .. } if token != 0));
    match decoder.try_next().unwrap() {
        Some(NetFrame::Heartbeat { seq }) => assert_eq!(seq, 7),
        other => panic!("expected the heartbeat echo, got {other:?}"),
    }
    assert_eq!(server.stats().heartbeats, 1);
}

#[test]
fn out_of_order_and_duplicate_responses_resolve_by_req_id() {
    // A scripted server: answers the two pipelined requests in reverse
    // order, then answers the first one *again*.
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut acceptor = acceptor;
    let mut client =
        QueryClient::new(MemoryRedial::new(connector, 1 << 16), QueryClientConfig::default());

    let t0 = Instant::now();
    let id_a = client.submit(Query::Span { stream: 1 }, t0);
    let id_b = client.submit(Query::Span { stream: 2 }, t0);
    client.pump_at(t0);

    let mut served = acceptor.try_accept().unwrap().expect("client dialed");
    let mut decoder = FrameDecoder::new(NetConfig::default().max_frame);
    let mut chunk = [0u8; 4096];
    let n = served.try_read(&mut chunk).unwrap();
    decoder.extend(&chunk[..n]);
    let mut reqs = Vec::new();
    let mut out = BytesMut::new();
    while let Some(frame) = decoder.try_next().unwrap() {
        match frame {
            NetFrame::Hello { .. } => {
                encode(
                    &NetFrame::HelloAck { version: PROTOCOL_VERSION, token: 42, cursors: vec![] },
                    &mut out,
                );
            }
            NetFrame::QueryReq { req_id, .. } => reqs.push(req_id),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(reqs, vec![id_a, id_b], "requests arrive in submission order");
    let answer = |id: u64, v: f64, out: &mut BytesMut| {
        encode(&NetFrame::QueryResp { req_id: id, body: QueryResult::Value(v).encode() }, out);
    };
    answer(id_b, 2.0, &mut out); // reverse order
    answer(id_a, 1.0, &mut out);
    answer(id_a, 999.0, &mut out); // duplicate: must be dropped, not re-completed
    served.try_write(&out).unwrap();

    client.pump_at(t0 + Duration::from_millis(1));
    assert_eq!(client.take_outcome(id_a), Some(Ok(Response::Result(QueryResult::Value(1.0)))));
    assert_eq!(client.take_outcome(id_b), Some(Ok(Response::Result(QueryResult::Value(2.0)))));
    assert_eq!(client.stats().dup_drops, 1, "first answer wins; the replay is a dup_drop");
}

#[test]
fn a_silent_server_converges_to_a_typed_timeout() {
    // The acceptor is never pumped: dials succeed, nothing ever
    // answers. Every attempt's deadline lapses, the link is declared
    // suspect and redialed, and after max_attempts the request
    // completes as ClientError::Timeout — never a hang.
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let config = QueryClientConfig {
        request_timeout: Duration::from_millis(50),
        max_attempts: 3,
        ..QueryClientConfig::default()
    };
    let mut client = QueryClient::new(MemoryRedial::new(connector, 1 << 16), config);

    let t0 = Instant::now();
    let id = client.submit(Query::Streams, t0);
    let mut now = t0;
    let outcome = loop {
        now += Duration::from_millis(1);
        client.pump_at(now);
        if let Some(out) = client.take_outcome(id) {
            break out;
        }
        assert!(now - t0 < Duration::from_secs(10), "timeout path must converge");
    };
    assert_eq!(outcome, Err(ClientError::Timeout { attempts: 3 }));
    assert_eq!(client.stats().timeouts, 1);
    assert!(client.stats().dials >= 3, "each suspect deadline forces a fresh dial");
    assert!(client.failure().is_none(), "a timeout is per-request, not terminal");
}
