//! Torn-frame pin for the query wire: the fault-injection harness's
//! `FaultLink` buffers whole frames and never returns a partial write,
//! so this suite runs over **raw** small-capacity `MemoryLink`s where
//! `try_write` routinely tears frames mid-byte — including request
//! frames strictly larger than the whole pipe. Both peers stage whole
//! frames per `Outbox::stage` call and resume mid-frame flushes across
//! pumps; a single violation desyncs the peer's frame decoder, so
//! bit-identical answers here pin the torn-write discipline on both
//! sides of the connection.

mod common;

use std::time::Instant;

use bytes::BytesMut;

use pla_net::frame::{encode, NetFrame};
use pla_net::listen::MemoryAcceptor;
use pla_net::{MemoryRedial, NetConfig};
use pla_query::{Query, QueryClient, QueryClientConfig, QueryServer, Response};

use common::{all_queries, assert_bit_equal, drive_to_completion, local_answers, sample_store};

/// Small enough that the pipelined burst tears mid-frame on every
/// flush, and that the wide `CountAbove` frames below cannot fit in the
/// pipe at all.
const LINK_CAPACITY: usize = 200;

/// The regular mix plus `CountAbove` grids whose encoded frames exceed
/// the whole pipe capacity — those *must* cross in torn pieces.
fn torn_workload() -> Vec<Query> {
    let mut queries = all_queries();
    for (stream, n) in [(5u64, 48usize), (2, 64), (9, 48)] {
        let times: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 1.0).collect();
        queries.push(Query::CountAbove { stream, dim: 0, threshold: 2.0, eps: 0.5, times });
    }
    queries
}

#[test]
fn torn_frames_never_desync_the_query_wire() {
    let store = sample_store();
    let queries = torn_workload();
    let reference = local_answers(&store, &queries);

    // Pin the premise: at least one request frame is bigger than the
    // entire pipe, so it cannot cross in one write.
    let mut oversized = 0usize;
    for q in &queries {
        let mut buf = BytesMut::new();
        encode(&NetFrame::QueryReq { req_id: 1, body: q.encode() }, &mut buf);
        if buf.len() > LINK_CAPACITY {
            oversized += 1;
        }
    }
    assert!(oversized >= 3, "the workload must contain frames larger than the pipe");

    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let mut server = QueryServer::new(acceptor, store, NetConfig::default());
    let mut client =
        QueryClient::new(MemoryRedial::new(connector, LINK_CAPACITY), QueryClientConfig::default());

    let t0 = Instant::now();
    let ids: Vec<u64> = queries.iter().map(|q| client.submit(q.clone(), t0)).collect();
    let done = drive_to_completion(&mut client, &mut server, t0, &ids, 20_000);

    for ((id, query), want) in ids.iter().zip(&queries).zip(&reference) {
        match &done[id] {
            Ok(Response::Result(got)) => {
                assert_bit_equal(got, want, &format!("torn-pipe {query:?}"))
            }
            other => panic!("{query:?} must survive torn frames, got {other:?}"),
        }
    }

    // No frame ever tore badly enough to kill a connection: one dial,
    // no redials, no decoder garbage on the server.
    assert_eq!(client.stats().dials, 1, "torn writes are not loss; no redial may happen");
    assert_eq!(client.stats().retransmits, 0);
    assert_eq!(client.stats().timeouts, 0);
    let stats = server.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.malformed, 0, "a torn frame must never decode as garbage");
    assert_eq!(stats.requests, queries.len() as u64);
    // The burst really crossed in pieces: the server read more bytes
    // than any single pipe fill could carry.
    assert!(
        stats.bytes_in as usize > LINK_CAPACITY * 2,
        "the workload must overfill the pipe repeatedly (read {} bytes)",
        stats.bytes_in
    );
}

#[test]
fn torn_frames_survive_many_tiny_capacities() {
    // Sweep awkward capacities (prime-ish, around header sizes) so
    // frame boundaries land at every offset: the classic off-by-one
    // hunting ground for length-delimited framing.
    let queries = torn_workload();
    for capacity in [61usize, 97, 131, 211, 256] {
        let store = sample_store();
        let reference = local_answers(&store, &queries);
        let acceptor = MemoryAcceptor::new();
        let connector = acceptor.connector();
        let mut server = QueryServer::new(acceptor, store, NetConfig::default());
        let mut client =
            QueryClient::new(MemoryRedial::new(connector, capacity), QueryClientConfig::default());
        let t0 = Instant::now();
        let ids: Vec<u64> = queries.iter().map(|q| client.submit(q.clone(), t0)).collect();
        let done = drive_to_completion(&mut client, &mut server, t0, &ids, 40_000);
        for ((id, query), want) in ids.iter().zip(&queries).zip(&reference) {
            match &done[id] {
                Ok(Response::Result(got)) => {
                    assert_bit_equal(got, want, &format!("capacity {capacity}, {query:?}"))
                }
                other => panic!("capacity {capacity}: {query:?} lost to torn frames: {other:?}"),
            }
        }
        assert_eq!(server.stats().malformed, 0, "capacity {capacity} desynced the decoder");
    }
}
