//! Integration tests for [`StoreQueryEngine`] against live store
//! snapshots, including the acceptance pin that point lookups stay
//! O(log n) in the number of segments.

use pla_core::{GapPolicy, Polyline, Segment};
use pla_ingest::{SegmentStore, StoreConfig, StreamId};
use pla_query::StoreQueryEngine;

fn seg(k: usize) -> Segment {
    let t0 = k as f64;
    // A mild zig-zag so evaluation inside a segment is non-trivial.
    let v0 = (k % 7) as f64;
    let v1 = ((k + 1) % 7) as f64;
    Segment {
        t_start: t0,
        x_start: [v0].into(),
        t_end: t0 + 1.0,
        x_end: [v1].into(),
        connected: false,
        n_points: 4,
        new_recordings: 4,
    }
}

fn store_with(n: usize) -> SegmentStore {
    let store = SegmentStore::with_config(StoreConfig { shards: 4, seal_threshold: 64 });
    let segs: Vec<Segment> = (0..n).map(seg).collect();
    store.append_batch(1, StreamId(7), &segs);
    store
}

/// Deterministic pseudo-random probe times spread over the stream span.
fn probes(n: usize) -> impl Iterator<Item = f64> {
    (0..512u64).map(move |i| {
        let j = (i.wrapping_mul(2654435761)) % n as u64;
        j as f64 + 0.25 + (i % 3) as f64 * 0.25
    })
}

/// The acceptance pin: comparison counts for point lookups grow
/// logarithmically with the log size. The lookup is two binary searches
/// (run starts, then inside one run) plus a constant number of coverage
/// checks, so `c1·log2(n) + c2` bounds it with small constants.
#[test]
fn point_lookup_comparisons_stay_logarithmic() {
    let mut worst = Vec::new();
    for n in [128usize, 1024, 8192, 65536] {
        let engine = StoreQueryEngine::new(store_with(n).snapshot());
        let mut max_cmp = 0usize;
        for t in probes(n) {
            let (v, stats) = engine.point_with_stats(StreamId(7), t, 0).unwrap();
            assert!(v.is_finite());
            max_cmp = max_cmp.max(stats.comparisons);
        }
        let log2n = (n as f64).log2();
        let bound = (2.0 * log2n + 16.0) as usize;
        assert!(
            max_cmp <= bound,
            "n={n}: worst lookup used {max_cmp} comparisons, bound is {bound}"
        );
        worst.push((n, max_cmp));
    }
    // Going 128 → 65536 multiplies n by 512; a scan would multiply the
    // comparison count similarly. Log growth keeps the ratio tiny.
    let (_, small) = worst[0];
    let (_, large) = worst[worst.len() - 1];
    assert!(
        large <= small.saturating_mul(4).max(small + 24),
        "comparisons grew from {small} to {large} across a 512× size increase"
    );
}

/// Point queries against the live snapshot agree with materializing the
/// flat log into a `Polyline` and evaluating it — same find preference,
/// same in-segment interpolation.
#[test]
fn point_queries_match_polyline_evaluation() {
    let n = 1000;
    let store = store_with(n);
    let engine = StoreQueryEngine::new(store.snapshot());
    let poly = Polyline::new(store.stream_segments(StreamId(7)).unwrap());
    for t in probes(n) {
        let want = poly.eval(t, 0, GapPolicy::Strict).unwrap();
        let got = engine.point(StreamId(7), t, 0).unwrap();
        assert_eq!(got.to_bits(), want.to_bits(), "divergence at t={t}");
    }
    // Boundary instants too: the later abutting segment wins in both.
    for k in 1..50 {
        let t = k as f64;
        assert_eq!(
            engine.point(StreamId(7), t, 0).unwrap().to_bits(),
            poly.eval(t, 0, GapPolicy::Strict).unwrap().to_bits()
        );
    }
}

/// Range aggregates over a known ramp are exact.
#[test]
fn range_aggregate_is_piecewise_exact_over_runs() {
    // Identity ramp: value == time, spanning many sealed runs.
    let store = SegmentStore::with_config(StoreConfig { shards: 2, seal_threshold: 8 });
    let segs: Vec<Segment> = (0..200)
        .map(|k| {
            let t0 = k as f64;
            Segment {
                t_start: t0,
                x_start: [t0].into(),
                t_end: t0 + 1.0,
                x_end: [t0 + 1.0].into(),
                connected: true,
                n_points: 2,
                new_recordings: 2,
            }
        })
        .collect();
    store.append_batch(1, StreamId(3), &segs);
    let engine = StoreQueryEngine::new(store.snapshot());

    let agg = engine.range(StreamId(3), 10.5, 90.5, 0).unwrap();
    assert_eq!(agg.min, 10.5);
    assert_eq!(agg.max, 90.5);
    // ∫ t dt over [10.5, 90.5] = (90.5² − 10.5²)/2 = 4040.
    assert!((agg.integral - 4040.0).abs() < 1e-9);
    assert!((agg.mean - 50.5).abs() < 1e-12);
}
