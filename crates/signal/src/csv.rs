//! Minimal CSV interchange for [`Signal`]s.
//!
//! Format: one sample per line, `time,dim0[,dim1,…]`, optional header line
//! (detected by a non-numeric first field), `#`-prefixed comment lines
//! skipped. This is deliberately dependency-free — enough to round-trip
//! experiment outputs and to load external traces such as the real TAO
//! sea-surface file.

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

use pla_core::Signal;

/// Errors raised while parsing CSV input.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Serializes a signal as CSV with a `time,x0,…` header.
pub fn write_signal<W: Write>(signal: &Signal, mut out: W) -> io::Result<()> {
    let mut line = String::from("time");
    for d in 0..signal.dims() {
        let _ = write!(line, ",x{d}");
    }
    line.push('\n');
    out.write_all(line.as_bytes())?;
    for (t, x) in signal.iter() {
        line.clear();
        let _ = write!(line, "{t}");
        for v in x {
            let _ = write!(line, ",{v}");
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Parses a signal from CSV (see module docs for the accepted format).
pub fn read_signal<R: Read>(input: R) -> Result<Signal, CsvError> {
    let reader = BufReader::new(input);
    let mut signal: Option<Signal> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("expected at least 2 fields, got {}", fields.len()),
            });
        }
        // Header detection: first field not numeric.
        if fields[0].parse::<f64>().is_err() {
            if signal.is_none() {
                continue;
            }
            return Err(CsvError::Parse {
                line: line_no,
                message: format!("non-numeric time field {:?}", fields[0]),
            });
        }
        let t: f64 = fields[0].parse().expect("checked above");
        let values: Result<Vec<f64>, _> = fields[1..].iter().map(|f| f.parse::<f64>()).collect();
        let values = values
            .map_err(|e| CsvError::Parse { line: line_no, message: format!("bad value: {e}") })?;
        let s = signal.get_or_insert_with(|| Signal::new(values.len()));
        s.push(t, &values)
            .map_err(|e| CsvError::Parse { line: line_no, message: e.to_string() })?;
    }
    Ok(signal.unwrap_or_else(|| Signal::new(1)))
}

/// Writes a signal to a file path.
pub fn save(signal: &Signal, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_signal(signal, io::BufWriter::new(file))
}

/// Reads a signal from a file path.
pub fn load(path: impl AsRef<Path>) -> Result<Signal, CsvError> {
    let file = std::fs::File::open(path)?;
    read_signal(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut s = Signal::new(2);
        s.push(0.0, &[1.5, -2.0]).unwrap();
        s.push(1.0, &[2.5, 0.0]).unwrap();
        s.push(2.5, &[3.0, 7.25]).unwrap();
        let mut buf = Vec::new();
        write_signal(&s, &mut buf).unwrap();
        let back = read_signal(&buf[..]).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parses_without_header() {
        let input = "0,1.0\n1,2.0\n";
        let s = read_signal(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(1, 0), 2.0);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = "# a comment\ntime,x0\n\n0,1\n# mid comment\n1,2\n";
        let s = read_signal(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rejects_garbage_values() {
        let input = "0,abc\n";
        assert!(matches!(read_signal(input.as_bytes()), Err(CsvError::Parse { line: 1, .. })));
    }

    #[test]
    fn rejects_non_monotone_times() {
        let input = "1,0\n1,1\n";
        let err = read_signal(input.as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_short_lines() {
        let input = "42\n";
        assert!(matches!(read_signal(input.as_bytes()), Err(CsvError::Parse { line: 1, .. })));
    }

    #[test]
    fn empty_input_gives_empty_signal() {
        let s = read_signal("".as_bytes()).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pla_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sig.csv");
        let s = crate::waveforms::ramp(10, 1.0, 0.0);
        save(&s, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(s, back);
        std::fs::remove_file(&path).ok();
    }
}
