//! Standard-normal sampling via Box–Muller.
//!
//! `rand` is on the workspace's allowed dependency list but `rand_distr`
//! is not, so the one distribution the correlated generator needs is
//! hand-rolled here (and unit-tested for its first two moments).

use rand::Rng;

/// Draws one standard-normal variate.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; reject u1 == 0 to keep ln finite.
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
