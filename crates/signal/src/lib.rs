//! # pla-signal — workload substrate for the `pla` workspace
//!
//! Generators for every signal family of the paper's evaluation (§5) plus
//! CSV I/O:
//!
//! * [`random_walk`] — the §5.3 synthetic model: value decreases with
//!   probability `p`, increases with `1 − p`, step magnitude `U(0, x)`
//!   (Figures 9 and 10);
//! * [`multi_walk`] / [`correlated_walk`] — the §5.4 multi-dimensional
//!   models with independent or ρ-correlated dimensions (Figures 11
//!   and 12);
//! * [`sea_surface`] — a deterministic proxy for the TAO sea-surface
//!   temperature trace of Figures 6–8 and 13 (the original NOAA file is
//!   not distributable with this repository; DESIGN.md §4 documents why
//!   the proxy preserves the relevant behaviour);
//! * [`waveforms`] — deterministic shapes (ramps, sines, steps) for tests
//!   and examples;
//! * [`csv`] — plain-text interchange so users can feed their own traces
//!   (including the real TAO data) to the filters.
//!
//! All generators are seeded and deterministic: the same parameters always
//! produce the same [`Signal`], which the experiment harness relies on.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
mod gauss;
mod sea;
mod stats;
mod walk;
pub mod waveforms;

pub use sea::{sea_surface, sea_surface_with, SeaSurfaceParams};
pub use stats::{increment_correlation, pearson};
pub use walk::{correlated_walk, multi_walk, random_walk, WalkParams};

pub use pla_core::Signal;
