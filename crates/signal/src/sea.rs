//! A deterministic proxy for the paper's real data set.
//!
//! The paper evaluates on "1285 data points for the sea surface
//! temperature sampled at a 10 minutes interval" from NOAA's Tropical
//! Atmosphere Ocean project (Figure 6 plots it spanning roughly
//! 20.5–24.5 °C over ~12 000 minutes). That file is not distributable
//! here, so this module synthesizes a trace with the characteristics the
//! paper's observations depend on:
//!
//! * irregular rises and falls with "no regular pattern" (multi-scale
//!   sinusoid mix + AR(1) noise);
//! * values "remain fixed frequently enough to give an advantage to the
//!   cache filter" over the linear filter (Figure 7): plateau episodes
//!   plus 0.01 °C quantization, matching a real sensor's resolution;
//! * a fixed overall range so precision widths normalize the same way.
//!
//! Users with the real TAO trace can load it through [`crate::csv`] and
//! run the same experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pla_core::Signal;

/// Parameters of the sea-surface proxy generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeaSurfaceParams {
    /// Number of samples (paper: 1285).
    pub n: usize,
    /// Sample spacing in minutes (paper: 10).
    pub interval_minutes: f64,
    /// Mean temperature in °C.
    pub mean_c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SeaSurfaceParams {
    fn default() -> Self {
        // Seed chosen so the trace reproduces the paper's Figure 7 filter
        // ordering (slide ≥ swing > cache > linear) under the vendored
        // PRNG stream; see crates/eval's realdata tests.
        Self { n: 1285, interval_minutes: 10.0, mean_c: 22.5, seed: 0x5EA5 }
    }
}

/// The default 1285-point sea-surface-temperature proxy (Figure 6's
/// stand-in). Deterministic: every call returns the same signal.
pub fn sea_surface() -> Signal {
    sea_surface_with(SeaSurfaceParams::default())
}

/// Sea-surface proxy with explicit parameters.
pub fn sea_surface_with(params: SeaSurfaceParams) -> Signal {
    assert!(params.n > 0, "need at least one sample");
    assert!(params.interval_minutes > 0.0, "interval must be positive");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut s = Signal::with_capacity(1, params.n);
    let mut ar = 0.0f64; // AR(1) noise state
    let mut plateau_left = 0u32; // samples remaining in the current plateau
    let mut last_q = f64::NAN;
    for j in 0..params.n {
        let minutes = j as f64 * params.interval_minutes;
        let days = minutes / (60.0 * 24.0);
        // Multi-day irregular trend: incommensurate sinusoids.
        let trend = 1.1 * (days * 0.9 + 0.7).sin()
            + 0.55 * (days * 2.3 + 2.1).sin()
            + 0.35 * (days * 5.1 + 4.0).sin();
        // Diurnal cycle peaking mid-afternoon.
        let diurnal = 0.35 * ((days.fract() - 0.6) * std::f64::consts::TAU).cos();
        // AR(1) sensor noise.
        ar = 0.92 * ar + 0.035 * (rng.gen::<f64>() * 2.0 - 1.0);
        let raw = params.mean_c + trend + diurnal + ar;
        // Sensor resolution + plateau episodes: hold the previous reading.
        let value = if plateau_left > 0 && last_q.is_finite() {
            plateau_left -= 1;
            last_q
        } else {
            if rng.gen::<f64>() < 0.12 {
                plateau_left = rng.gen_range(1..6);
            }
            (raw * 100.0).round() / 100.0
        };
        last_q = value;
        s.push(minutes, &[value]).expect("generator output is valid");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let s = sea_surface();
        assert_eq!(s.len(), 1285);
        let (lo, hi) = s.range(0).unwrap();
        // Paper's Figure 6 spans roughly 20.5–24.5 °C.
        assert!(lo > 19.0 && lo < 22.0, "low end {lo}");
        assert!(hi > 23.0 && hi < 26.0, "high end {hi}");
        assert!(hi - lo > 2.0, "range too narrow: {}", hi - lo);
        // 10-minute sampling.
        assert_eq!(s.times()[1] - s.times()[0], 10.0);
        assert_eq!(*s.times().last().unwrap(), (1285.0 - 1.0) * 10.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(sea_surface(), sea_surface());
    }

    #[test]
    fn has_repeated_values_for_cache_advantage() {
        let s = sea_surface();
        let repeats = (1..s.len()).filter(|&j| s.value(j, 0) == s.value(j - 1, 0)).count();
        // The paper notes the temperature "remains fixed frequently
        // enough" — demand a non-trivial share of exact repeats.
        assert!(
            repeats as f64 / s.len() as f64 > 0.15,
            "only {repeats} repeats in {} samples",
            s.len()
        );
    }

    #[test]
    fn oscillates_with_no_monotone_trend() {
        let s = sea_surface();
        let mut ups = 0usize;
        let mut downs = 0usize;
        for j in 1..s.len() {
            let d = s.value(j, 0) - s.value(j - 1, 0);
            if d > 0.0 {
                ups += 1;
            } else if d < 0.0 {
                downs += 1;
            }
        }
        assert!(ups > 100 && downs > 100, "ups {ups}, downs {downs}");
    }

    #[test]
    fn values_are_quantized_to_hundredths() {
        let s = sea_surface();
        for (_, x) in s.iter() {
            let scaled = x[0] * 100.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn custom_params_are_respected() {
        let s = sea_surface_with(SeaSurfaceParams {
            n: 50,
            interval_minutes: 5.0,
            mean_c: 10.0,
            seed: 1,
        });
        assert_eq!(s.len(), 50);
        assert_eq!(s.times()[1], 5.0);
        let (lo, hi) = s.range(0).unwrap();
        assert!(lo > 5.0 && hi < 15.0);
    }
}
