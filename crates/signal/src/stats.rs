//! Small statistics helpers used by generators, tests, and experiments.

use pla_core::Signal;

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns 0 when either series has zero variance (constant series carry
/// no correlation information).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must have equal length");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let ma = a.iter().sum::<f64>() / nf;
    let mb = b.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Pearson correlation of the per-step *increments* of two dimensions of
/// a signal — the quantity the §5.4 correlated generator controls.
pub fn increment_correlation(signal: &Signal, dim_a: usize, dim_b: usize) -> f64 {
    let n = signal.len();
    if n < 3 {
        return 0.0;
    }
    let mut da = Vec::with_capacity(n - 1);
    let mut db = Vec::with_capacity(n - 1);
    for j in 1..n {
        da.push(signal.value(j, dim_a) - signal.value(j - 1, dim_a));
        db.push(signal.value(j, dim_b) - signal.value(j - 1, dim_b));
    }
    pearson(&da, &db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_yield_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&a, &b), 0.0);
    }

    #[test]
    fn orthogonal_series() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn increment_correlation_of_identical_dims_is_one() {
        let mut s = Signal::new(2);
        for j in 0..50 {
            let v = ((j * j) % 13) as f64;
            s.push(j as f64, &[v, v]).unwrap();
        }
        assert!((increment_correlation(&s, 0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn short_series_degenerate() {
        let mut s = Signal::new(2);
        s.push(0.0, &[1.0, 2.0]).unwrap();
        assert_eq!(increment_correlation(&s, 0, 1), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }
}
