//! The paper's §5.3/§5.4 synthetic workloads: random-walk-like signals.
//!
//! > "We generated the synthetic signals such that they follow a
//! > random-walk-like model. The value for each data point can be lower
//! > than or higher than that of the previous data point according to the
//! > probabilities p and (1−p) respectively. The magnitude of
//! > increase/decrease in the value is given by a uniform distribution
//! > U(0,x), where x is a configurable parameter."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pla_core::Signal;

use crate::gauss::standard_normal;

/// Parameters of the §5.3 random-walk model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkParams {
    /// Number of data points `n`.
    pub n: usize,
    /// Probability that a step *decreases* the value (the paper's `p`,
    /// swept in Figure 9). `0` ⇒ monotonically increasing,
    /// `0.5` ⇒ balanced oscillation.
    pub p_decrease: f64,
    /// Maximum step magnitude `x` of `U(0, x)` (swept in Figure 10,
    /// expressed there as a percentage of the precision width).
    pub max_delta: f64,
    /// RNG seed; equal seeds give equal signals.
    pub seed: u64,
}

impl Default for WalkParams {
    fn default() -> Self {
        Self { n: 10_000, p_decrease: 0.5, max_delta: 1.0, seed: 0x5EED }
    }
}

/// Generates the 1-D random walk of §5.3.
///
/// # Panics
///
/// Panics if `p_decrease ∉ [0, 1]`, `max_delta < 0`, or `n == 0`.
pub fn random_walk(params: WalkParams) -> Signal {
    validate(&params);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut s = Signal::with_capacity(1, params.n);
    let mut x = 0.0f64;
    for j in 0..params.n {
        s.push(j as f64, &[x]).expect("walk output is valid");
        x += step(&mut rng, params.p_decrease, params.max_delta);
    }
    s
}

/// Generates a `d`-dimensional signal whose dimensions are *independent*
/// random walks with the given parameters (Figure 11's workload).
pub fn multi_walk(dims: usize, params: WalkParams) -> Signal {
    validate(&params);
    assert!(dims > 0, "need at least one dimension");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut s = Signal::with_capacity(dims, params.n);
    let mut vals = vec![0.0f64; dims];
    for j in 0..params.n {
        s.push(j as f64, &vals).expect("walk output is valid");
        for v in vals.iter_mut() {
            *v += step(&mut rng, params.p_decrease, params.max_delta);
        }
    }
    s
}

/// Generates a `d`-dimensional signal whose per-step increments have
/// pairwise correlation ≈ `rho` (Figure 12's workload).
///
/// A single-factor Gaussian model drives the correlation: each dimension's
/// increment is `√ρ · common + √(1−ρ) · own`, scaled so the marginal step
/// distribution matches the 1-D walk's variance. `rho = 0` reduces to
/// independent Gaussian walks; `rho = 1` makes all dimensions identical.
///
/// # Panics
///
/// Panics if `rho ∉ [0, 1]` or the walk parameters are invalid.
pub fn correlated_walk(dims: usize, rho: f64, params: WalkParams) -> Signal {
    validate(&params);
    assert!(dims > 0, "need at least one dimension");
    assert!((0.0..=1.0).contains(&rho), "correlation must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Match the 1-D walk's step standard deviation: a step is
    // ±U(0, x) with sign bias p; for p = 0.5 the std is x/√3.
    let sigma = params.max_delta / 3.0f64.sqrt();
    let drift = (1.0 - 2.0 * params.p_decrease) * params.max_delta / 2.0;
    let w_common = rho.sqrt();
    let w_own = (1.0 - rho).sqrt();
    let mut s = Signal::with_capacity(dims, params.n);
    let mut vals = vec![0.0f64; dims];
    for j in 0..params.n {
        s.push(j as f64, &vals).expect("walk output is valid");
        let common = standard_normal(&mut rng);
        for v in vals.iter_mut() {
            let own = standard_normal(&mut rng);
            *v += drift + sigma * (w_common * common + w_own * own);
        }
    }
    s
}

fn validate(params: &WalkParams) {
    assert!(params.n > 0, "need at least one point");
    assert!((0.0..=1.0).contains(&params.p_decrease), "p_decrease must be a probability");
    assert!(params.max_delta >= 0.0, "max_delta must be non-negative");
}

fn step<R: Rng + ?Sized>(rng: &mut R, p_decrease: f64, max_delta: f64) -> f64 {
    let magnitude: f64 = rng.gen::<f64>() * max_delta;
    if rng.gen::<f64>() < p_decrease {
        -magnitude
    } else {
        magnitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::increment_correlation;

    #[test]
    fn deterministic_per_seed() {
        let a = random_walk(WalkParams { n: 100, seed: 9, ..Default::default() });
        let b = random_walk(WalkParams { n: 100, seed: 9, ..Default::default() });
        let c = random_walk(WalkParams { n: 100, seed: 10, ..Default::default() });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn monotone_when_p_zero() {
        let s = random_walk(WalkParams { n: 500, p_decrease: 0.0, ..Default::default() });
        for j in 1..s.len() {
            assert!(s.value(j, 0) >= s.value(j - 1, 0));
        }
    }

    #[test]
    fn monotone_decreasing_when_p_one() {
        let s = random_walk(WalkParams { n: 500, p_decrease: 1.0, ..Default::default() });
        for j in 1..s.len() {
            assert!(s.value(j, 0) <= s.value(j - 1, 0));
        }
    }

    #[test]
    fn steps_bounded_by_max_delta() {
        let s = random_walk(WalkParams { n: 1000, max_delta: 0.25, ..Default::default() });
        for j in 1..s.len() {
            assert!((s.value(j, 0) - s.value(j - 1, 0)).abs() <= 0.25);
        }
    }

    #[test]
    fn multi_walk_dimensions_are_independent() {
        let s = multi_walk(3, WalkParams { n: 20_000, ..Default::default() });
        assert_eq!(s.dims(), 3);
        for a in 0..3 {
            for b in (a + 1)..3 {
                let r = increment_correlation(&s, a, b);
                assert!(r.abs() < 0.05, "dims {a},{b} correlated: {r}");
            }
        }
    }

    #[test]
    fn correlated_walk_hits_target_correlation() {
        for &rho in &[0.0, 0.3, 0.7, 1.0] {
            let s = correlated_walk(4, rho, WalkParams { n: 30_000, ..Default::default() });
            for a in 0..4 {
                for b in (a + 1)..4 {
                    let r = increment_correlation(&s, a, b);
                    assert!(
                        (r - rho).abs() < 0.05,
                        "target ρ={rho}, measured {r} for dims {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn correlated_walk_marginal_scale_matches_uniform_walk() {
        let p = WalkParams { n: 50_000, max_delta: 2.0, ..Default::default() };
        let g = correlated_walk(1, 0.5, p);
        // std of increments should be ≈ 2/√3 ≈ 1.1547
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let n = g.len() - 1;
        for j in 1..g.len() {
            let d = g.value(j, 0) - g.value(j - 1, 0);
            sum += d;
            sum_sq += d * d;
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!((std - 2.0 / 3.0f64.sqrt()).abs() < 0.05, "std {std}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        random_walk(WalkParams { p_decrease: 1.5, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn rejects_bad_correlation() {
        correlated_walk(2, 1.5, WalkParams::default());
    }
}
