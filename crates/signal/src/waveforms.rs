//! Deterministic waveform generators for tests, examples, and ablations.

use pla_core::Signal;

/// A straight ramp `x(t) = intercept + slope · t` over `n` unit-spaced
/// samples — the best case for every linear filter.
pub fn ramp(n: usize, slope: f64, intercept: f64) -> Signal {
    Signal::from_values(&(0..n).map(|j| intercept + slope * j as f64).collect::<Vec<_>>())
}

/// A sine wave with the given amplitude and period (in samples).
pub fn sine(n: usize, amplitude: f64, period: f64) -> Signal {
    assert!(period > 0.0, "period must be positive");
    Signal::from_values(
        &(0..n)
            .map(|j| amplitude * (j as f64 / period * std::f64::consts::TAU).sin())
            .collect::<Vec<_>>(),
    )
}

/// A sawtooth: rises linearly for `period` samples then drops back to 0.
pub fn sawtooth(n: usize, amplitude: f64, period: usize) -> Signal {
    assert!(period > 0, "period must be positive");
    Signal::from_values(
        &(0..n).map(|j| amplitude * (j % period) as f64 / period as f64).collect::<Vec<_>>(),
    )
}

/// A square step function alternating between `low` and `high` every
/// `half_period` samples — the best case for the cache filter.
pub fn steps(n: usize, low: f64, high: f64, half_period: usize) -> Signal {
    assert!(half_period > 0, "half_period must be positive");
    Signal::from_values(
        &(0..n)
            .map(|j| if (j / half_period).is_multiple_of(2) { low } else { high })
            .collect::<Vec<_>>(),
    )
}

/// A "staircase": piece-wise constant with increasing levels, mimicking a
/// counter that advances in bursts (cluster-monitoring workloads from the
/// paper's introduction).
pub fn staircase(n: usize, step_height: f64, dwell: usize) -> Signal {
    assert!(dwell > 0, "dwell must be positive");
    Signal::from_values(&(0..n).map(|j| step_height * (j / dwell) as f64).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_is_linear() {
        let s = ramp(10, 2.0, 1.0);
        assert_eq!(s.value(0, 0), 1.0);
        assert_eq!(s.value(9, 0), 19.0);
    }

    #[test]
    fn sine_oscillates_within_amplitude() {
        let s = sine(100, 3.0, 25.0);
        let (lo, hi) = s.range(0).unwrap();
        assert!(lo >= -3.0 && hi <= 3.0);
        assert!(hi > 2.5 && lo < -2.5);
    }

    #[test]
    fn sawtooth_wraps() {
        let s = sawtooth(20, 1.0, 5);
        assert_eq!(s.value(0, 0), 0.0);
        assert_eq!(s.value(4, 0), 0.8);
        assert_eq!(s.value(5, 0), 0.0);
    }

    #[test]
    fn steps_alternate() {
        let s = steps(8, 0.0, 1.0, 2);
        let vals: Vec<f64> = (0..8).map(|j| s.value(j, 0)).collect();
        assert_eq!(vals, vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn staircase_holds_then_jumps() {
        let s = staircase(9, 2.0, 3);
        assert_eq!(s.value(2, 0), 0.0);
        assert_eq!(s.value(3, 0), 2.0);
        assert_eq!(s.value(8, 0), 4.0);
    }
}
