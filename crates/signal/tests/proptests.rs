//! Property tests for the workload generators: every generator output
//! must be a valid filter input and honour its declared statistics.

use proptest::prelude::*;

use pla_signal::{
    correlated_walk, increment_correlation, multi_walk, random_walk, sea_surface_with,
    SeaSurfaceParams, WalkParams,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Walks are valid signals with bounded steps and correct direction
    /// statistics.
    #[test]
    fn random_walk_obeys_parameters(
        n in 2usize..2000,
        p in 0.0f64..=1.0,
        delta in 0.01f64..10.0,
        seed in any::<u64>(),
    ) {
        let s = random_walk(WalkParams { n, p_decrease: p, max_delta: delta, seed });
        prop_assert_eq!(s.len(), n);
        let mut downs = 0usize;
        let mut moves = 0usize;
        for j in 1..n {
            let step = s.value(j, 0) - s.value(j - 1, 0);
            prop_assert!(step.abs() <= delta + 1e-12, "step {step} exceeds {delta}");
            if step != 0.0 {
                moves += 1;
                if step < 0.0 {
                    downs += 1;
                }
            }
        }
        // Direction statistics within a loose binomial envelope.
        if moves > 200 {
            let rate = downs as f64 / moves as f64;
            prop_assert!(
                (rate - p).abs() < 0.15,
                "decrease rate {rate} far from p = {p}"
            );
        }
    }

    /// Determinism: the same parameters always give the same signal.
    #[test]
    fn generators_are_deterministic(seed in any::<u64>(), n in 2usize..200) {
        let p = WalkParams { n, seed, ..Default::default() };
        prop_assert_eq!(random_walk(p), random_walk(p));
        prop_assert_eq!(multi_walk(3, p), multi_walk(3, p));
        prop_assert_eq!(correlated_walk(3, 0.5, p), correlated_walk(3, 0.5, p));
    }

    /// Correlated walks hit their target increment correlation.
    #[test]
    fn correlated_walk_hits_rho(rho in 0.0f64..=1.0, seed in any::<u64>()) {
        let s = correlated_walk(
            2,
            rho,
            WalkParams { n: 8000, seed, ..Default::default() },
        );
        let measured = increment_correlation(&s, 0, 1);
        prop_assert!(
            (measured - rho).abs() < 0.08,
            "target ρ = {rho}, measured {measured}"
        );
    }

    /// The sea-surface proxy respects its size/spacing parameters and
    /// stays within a plausible temperature band.
    #[test]
    fn sea_surface_parameters(
        n in 10usize..3000,
        interval in 1.0f64..60.0,
        seed in any::<u64>(),
    ) {
        let s = sea_surface_with(SeaSurfaceParams {
            n,
            interval_minutes: interval,
            mean_c: 22.5,
            seed,
        });
        prop_assert_eq!(s.len(), n);
        if n >= 2 {
            prop_assert!((s.times()[1] - s.times()[0] - interval).abs() < 1e-9);
        }
        let (lo, hi) = s.range(0).unwrap();
        prop_assert!(lo > 15.0 && hi < 30.0, "implausible range {lo}–{hi}");
    }
}
