//! Offline bottom-up segmentation under an L∞ bound.
//!
//! Start from the finest segmentation (adjacent point pairs), compute the
//! cost of merging each neighbouring pair of segments, and repeatedly
//! apply the cheapest merge whose result still fits — i.e. whose
//! least-squares line keeps every covered point within `εᵢ` in every
//! dimension. Merge costs are kept in a lazy max-heap keyed by the
//! *normalized* worst residual (residual / εᵢ), and stale heap entries
//! are skipped by version counting.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pla_core::{validate_epsilons, FilterError, Segment, Signal};

/// Least-squares line fit of `signal[lo..hi]` (half-open, `hi − lo ≥ 1`)
/// for every dimension, returning the fitted segment over that range and
/// the worst ε-normalized residual.
///
/// A single-point range yields a degenerate (point) segment with zero
/// residual.
pub fn fit_segment(signal: &Signal, lo: usize, hi: usize, eps: &[f64]) -> (Segment, f64) {
    debug_assert!(lo < hi && hi <= signal.len());
    let d = signal.dims();
    let n = (hi - lo) as f64;
    let t0 = signal.times()[lo];
    let t1 = signal.times()[hi - 1];
    if hi - lo == 1 {
        let (_, x) = signal.sample(lo);
        return (
            Segment {
                t_start: t0,
                x_start: x.into(),
                t_end: t0,
                x_end: x.into(),
                connected: false,
                n_points: 1,
                new_recordings: 1,
            },
            0.0,
        );
    }
    // Per-dimension least squares x ≈ a + b·(t − t0).
    let mut su = 0.0;
    let mut suu = 0.0;
    for j in lo..hi {
        let u = signal.times()[j] - t0;
        su += u;
        suu += u * u;
    }
    let mut x_start = Vec::with_capacity(d);
    let mut x_end = Vec::with_capacity(d);
    let mut worst = 0.0f64;
    for (dim, &eps_d) in eps.iter().enumerate().take(d) {
        let mut sv = 0.0;
        let mut suv = 0.0;
        for j in lo..hi {
            let u = signal.times()[j] - t0;
            let v = signal.value(j, dim);
            sv += v;
            suv += u * v;
        }
        let denom = n * suu - su * su;
        let (a, b) = if denom.abs() < 1e-300 {
            (sv / n, 0.0)
        } else {
            let b = (n * suv - su * sv) / denom;
            let a = (sv - b * su) / n;
            (a, b)
        };
        for j in lo..hi {
            let u = signal.times()[j] - t0;
            let r = (signal.value(j, dim) - (a + b * u)).abs();
            worst = worst.max(r / eps_d);
        }
        x_start.push(a);
        x_end.push(a + b * (t1 - t0));
    }
    (
        Segment {
            t_start: t0,
            x_start: x_start.into(),
            t_end: t1,
            x_end: x_end.into(),
            connected: false,
            n_points: (hi - lo) as u32,
            new_recordings: 2,
        },
        worst,
    )
}

/// A segment under construction: a point range plus linked-list
/// neighbours.
#[derive(Debug, Clone, Copy)]
struct Piece {
    lo: usize,
    hi: usize,
    prev: Option<usize>,
    next: Option<usize>,
    version: u64,
    alive: bool,
}

/// Bottom-up segmentation of `signal` under per-dimension bounds `eps`.
///
/// Returns time-ordered disconnected segments, each holding every covered
/// point within `εᵢ` (least-squares fit, max-residual acceptance).
pub fn bottom_up(signal: &Signal, eps: &[f64]) -> Result<Vec<Segment>, FilterError> {
    validate_epsilons(eps)?;
    if eps.len() != signal.dims() {
        return Err(FilterError::DimensionMismatch { expected: signal.dims(), got: eps.len() });
    }
    let n = signal.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Finest segmentation: pairs, with a possible trailing singleton.
    let mut pieces: Vec<Piece> = Vec::with_capacity(n / 2 + 1);
    let mut j = 0;
    while j < n {
        let hi = (j + 2).min(n);
        pieces.push(Piece { lo: j, hi, prev: None, next: None, version: 0, alive: true });
        j = hi;
    }
    let count = pieces.len();
    for (i, piece) in pieces.iter_mut().enumerate() {
        piece.prev = i.checked_sub(1);
        piece.next = (i + 1 < count).then_some(i + 1);
    }
    // Lazy min-heap of merge candidates (cost, left piece, version sum).
    let mut heap: BinaryHeap<Reverse<(OrderedF64, usize, u64)>> = BinaryHeap::new();
    let push_candidate =
        |heap: &mut BinaryHeap<Reverse<(OrderedF64, usize, u64)>>, pieces: &[Piece], i: usize| {
            let Some(k) = pieces[i].next else { return };
            let (_, cost) = fit_segment(signal, pieces[i].lo, pieces[k].hi, &eps_vec(eps));
            if cost <= 1.0 {
                let ver = pieces[i].version + pieces[k].version;
                heap.push(Reverse((OrderedF64(cost), i, ver)));
            }
        };
    for i in 0..count {
        push_candidate(&mut heap, &pieces, i);
    }
    while let Some(Reverse((_, i, ver))) = heap.pop() {
        if !pieces[i].alive {
            continue;
        }
        let Some(k) = pieces[i].next else { continue };
        if pieces[i].version + pieces[k].version != ver {
            continue; // stale entry
        }
        // Merge k into i.
        pieces[i].hi = pieces[k].hi;
        pieces[i].version += pieces[k].version + 1;
        pieces[k].alive = false;
        let after = pieces[k].next;
        pieces[i].next = after;
        if let Some(a) = after {
            pieces[a].prev = Some(i);
        }
        // Refresh the two affected candidates.
        if let Some(p) = pieces[i].prev {
            push_candidate(&mut heap, &pieces, p);
        }
        push_candidate(&mut heap, &pieces, i);
    }
    // Walk the list and emit fitted segments.
    let mut out = Vec::new();
    let mut cur = Some(0usize);
    // Piece 0 always survives (merges fold rightward into the left index).
    while let Some(i) = cur {
        let p = pieces[i];
        debug_assert!(p.alive);
        let (seg, cost) = fit_segment(signal, p.lo, p.hi, eps);
        debug_assert!(cost <= 1.0 + 1e-9, "emitted segment violates ε: {cost}");
        out.push(seg);
        cur = p.next;
    }
    Ok(out)
}

fn eps_vec(eps: &[f64]) -> Vec<f64> {
    eps.to_vec()
}

/// Total-order wrapper for finite f64 costs.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_guarantee(signal: &Signal, segs: &[Segment], eps: &[f64]) {
        for (t, x) in signal.iter() {
            let seg =
                segs.iter().find(|s| s.covers(t)).unwrap_or_else(|| panic!("t={t} uncovered"));
            for (d, (&v, &e)) in x.iter().zip(eps.iter()).enumerate() {
                assert!((seg.eval(t, d) - v).abs() <= e * (1.0 + 1e-9), "dim {d} at t={t}");
            }
        }
    }

    #[test]
    fn straight_line_merges_to_one_segment() {
        let s = Signal::from_values(&(0..64).map(|i| 3.0 * i as f64).collect::<Vec<_>>());
        let segs = bottom_up(&s, &[0.1]).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 64);
        assert!((segs[0].slope(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn two_trends_stay_two_segments() {
        let mut vals: Vec<f64> = (0..30).map(|i| i as f64).collect();
        vals.extend((0..30).map(|i| 29.0 - i as f64));
        let s = Signal::from_values(&vals);
        let segs = bottom_up(&s, &[0.5]).unwrap();
        assert!(segs.len() >= 2, "V-shape cannot fit one line");
        check_guarantee(&s, &segs, &[0.5]);
    }

    #[test]
    fn guarantee_on_noisy_walk() {
        let mut seed = 17u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        let s = Signal::from_values(
            &(0..800)
                .map(|_| {
                    x += rnd();
                    x
                })
                .collect::<Vec<_>>(),
        );
        for eps in [0.3, 1.0, 4.0] {
            let segs = bottom_up(&s, &[eps]).unwrap();
            check_guarantee(&s, &segs, &[eps]);
            let total: u32 = segs.iter().map(|sg| sg.n_points).sum();
            assert_eq!(total as usize, s.len());
        }
    }

    #[test]
    fn odd_length_leaves_consistent_tail() {
        let s = Signal::from_values(&[0.0, 10.0, 0.0, 10.0, 0.0]);
        let segs = bottom_up(&s, &[0.5]).unwrap();
        let total: u32 = segs.iter().map(|sg| sg.n_points).sum();
        assert_eq!(total, 5);
        check_guarantee(&s, &segs, &[0.5]);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Signal::new(1);
        assert!(bottom_up(&s, &[1.0]).unwrap().is_empty());
        let s = Signal::from_values(&[7.0]);
        let segs = bottom_up(&s, &[1.0]).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].n_points, 1);
    }

    #[test]
    fn multi_dim_merge_respects_every_dimension() {
        let mut s = Signal::new(2);
        for jj in 0..40 {
            let t = jj as f64;
            let x1 = if jj < 20 { 0.0 } else { 10.0 };
            s.push(t, &[t * 0.5, x1]).unwrap();
        }
        let segs = bottom_up(&s, &[0.5, 0.5]).unwrap();
        assert!(segs.len() >= 2);
        check_guarantee(&s, &segs, &[0.5, 0.5]);
    }

    #[test]
    fn fit_segment_residual_is_normalized() {
        let s = Signal::from_values(&[0.0, 1.0, 0.0]);
        // LSQ through these: flat-ish; worst residual ~2/3.
        let (_, cost_tight) = fit_segment(&s, 0, 3, &[0.1]);
        let (_, cost_loose) = fit_segment(&s, 0, 3, &[10.0]);
        assert!(cost_tight > 1.0);
        assert!(cost_loose < 1.0);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let s = Signal::from_values(&[1.0, 2.0]);
        assert!(bottom_up(&s, &[1.0, 1.0]).is_err());
    }
}
