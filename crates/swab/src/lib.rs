//! # pla-swab — SWAB segmentation with swing/slide lookahead
//!
//! Keogh, Chu, Hart & Pazzani's **SWAB** (Sliding Window And Bottom-up,
//! ICDM 2001) merges an offline bottom-up segmenter with an online
//! lookahead that decides how much new data to buffer. The VLDB 2009
//! swing/slide paper calls itself *complementary* to SWAB: "the swing and
//! slide filters can replace the linear filter in the SWAB algorithm"
//! (§6). This crate builds both halves and makes the lookahead pluggable,
//! so that claim can be tested rather than taken on faith:
//!
//! * [`bottom_up`] — offline bottom-up segmentation under a per-dimension
//!   L∞ bound: repeatedly merge the cheapest adjacent pair of segments
//!   whose merged least-squares fit still keeps every point within `εᵢ`;
//! * [`Swab`] — the streaming wrapper: points accumulate in a bounded
//!   buffer; whenever the lookahead filter closes one of its own
//!   intervals (or the buffer fills), the buffer is re-segmented
//!   bottom-up and the *leftmost* segment is emitted, keeping the rest
//!   for future refinement. [`Swab`] implements
//!   [`StreamFilter`](pla_core::filters::StreamFilter), so everything in
//!   `pla-core::metrics` and `pla-transport` applies to it unchanged.
//!
//! Differences from Keogh's original, documented per DESIGN.md §4:
//! the merge acceptance test uses the max *absolute* residual of the
//! per-dimension least-squares fit (not residual sum of squares), so the
//! emitted segments carry the same L∞ guarantee as the rest of this
//! workspace. A least-squares fit is not the Chebyshev-optimal line, so
//! the segmenter is conservative: it may split where an optimal fit could
//! merge, but it never violates `ε`.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bottom_up;
mod streaming;

pub use bottom_up::{bottom_up, fit_segment};
pub use streaming::{Lookahead, Swab};
