//! Streaming SWAB: a bounded buffer, re-segmented bottom-up, drained one
//! leftmost segment at a time, paced by a pluggable online lookahead.
//!
//! Keogh's original uses a linear-filter scan ("Best_Line") to decide how
//! much fresh data enters the buffer before the next bottom-up pass. Per
//! the VLDB 2009 paper's §6 remark, any of the online filters can take
//! that role; [`Lookahead`] selects which.

use pla_core::filters::{LinearFilter, SlideFilter, StreamFilter, SwingFilter};
use pla_core::{validate_epsilons, FilterError, Segment, SegmentSink, Signal};

use crate::bottom_up::bottom_up;

/// Which online filter paces the buffer refills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lookahead {
    /// Keogh's original choice: the linear filter.
    Linear,
    /// The paper's swing filter.
    Swing,
    /// The paper's slide filter (longest feasible chunks).
    #[default]
    Slide,
}

impl Lookahead {
    fn build(self, eps: &[f64]) -> Box<dyn StreamFilter> {
        match self {
            Self::Linear => Box::new(LinearFilter::new(eps).expect("validated ε")),
            Self::Swing => Box::new(SwingFilter::new(eps).expect("validated ε")),
            Self::Slide => Box::new(SlideFilter::new(eps).expect("validated ε")),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Linear => "swab(linear)",
            Self::Swing => "swab(swing)",
            Self::Slide => "swab(slide)",
        }
    }
}

/// Sink that only remembers whether the lookahead closed a segment.
#[derive(Default)]
struct TriggerSink {
    fired: bool,
}

impl SegmentSink for TriggerSink {
    fn segment(&mut self, _seg: Segment) {
        self.fired = true;
    }
}

/// Streaming SWAB segmenter. Implements
/// [`StreamFilter`], so it plugs into the same metrics, transport, and
/// experiment machinery as the paper's filters.
///
/// The buffer capacity bounds both memory and the emission lag (a point
/// is emitted after at most `capacity` further points arrive).
///
/// ```
/// use pla_core::filters::run_filter;
/// use pla_core::Signal;
/// use pla_swab::{Lookahead, Swab};
///
/// let signal = Signal::from_values(
///     &(0..200).map(|j| (j as f64 * 0.1).sin()).collect::<Vec<_>>(),
/// );
/// let mut swab = Swab::new(&[0.05], 64, Lookahead::Slide).unwrap();
/// let segments = run_filter(&mut swab, &signal).unwrap();
/// // Bottom-up refinement keeps every sample within ε of its segment.
/// for (t, x) in signal.iter() {
///     let seg = segments.iter().find(|s| s.covers(t)).unwrap();
///     assert!((seg.eval(t, 0) - x[0]).abs() <= 0.05 * (1.0 + 1e-9));
/// }
/// ```
pub struct Swab {
    eps: Vec<f64>,
    capacity: usize,
    kind: Lookahead,
    lookahead: Box<dyn StreamFilter>,
    buffer: Signal,
}

impl Swab {
    /// Creates a SWAB segmenter.
    ///
    /// `capacity` is the maximum number of buffered points (≥ 4).
    pub fn new(eps: &[f64], capacity: usize, kind: Lookahead) -> Result<Self, FilterError> {
        validate_epsilons(eps)?;
        if capacity < 4 {
            return Err(FilterError::InvalidMaxLag { value: capacity });
        }
        Ok(Self {
            eps: eps.to_vec(),
            capacity,
            kind,
            lookahead: kind.build(eps),
            buffer: Signal::new(eps.len()),
        })
    }

    /// The configured lookahead.
    pub fn lookahead(&self) -> Lookahead {
        self.kind
    }

    /// The configured buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Re-segments the buffer and emits its leftmost segment, retaining
    /// the remaining points.
    fn emit_leftmost(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        let segs = bottom_up(&self.buffer, &self.eps)?;
        let Some(first) = segs.into_iter().next() else {
            return Ok(());
        };
        let covered = first.n_points as usize;
        sink.segment(first);
        let mut rest = Signal::with_capacity(self.eps.len(), self.buffer.len() - covered);
        for j in covered..self.buffer.len() {
            let (t, x) = self.buffer.sample(j);
            rest.push(t, x).expect("suffix of a valid signal is valid");
        }
        self.buffer = rest;
        Ok(())
    }
}

impl StreamFilter for Swab {
    fn dims(&self) -> usize {
        self.eps.len()
    }

    fn epsilons(&self) -> &[f64] {
        &self.eps
    }

    fn push(&mut self, t: f64, x: &[f64], sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        self.buffer.push(t, x)?;
        let mut trigger = TriggerSink::default();
        self.lookahead.push(t, x, &mut trigger)?;
        // Drain when the lookahead closed one of its intervals (a natural
        // segment boundary passed) or the buffer hit its bound. Keep at
        // least a pair buffered so bottom-up always has context.
        if (trigger.fired && self.buffer.len() > 2) || self.buffer.len() >= self.capacity {
            self.emit_leftmost(sink)?;
        }
        Ok(())
    }

    fn finish(&mut self, sink: &mut dyn SegmentSink) -> Result<(), FilterError> {
        let segs = bottom_up(&self.buffer, &self.eps)?;
        for s in segs {
            sink.segment(s);
        }
        self.buffer = Signal::new(self.eps.len());
        let mut scratch = TriggerSink::default();
        self.lookahead.finish(&mut scratch)?;
        Ok(())
    }

    fn pending_points(&self) -> usize {
        self.buffer.len()
    }

    fn name(&self) -> &'static str {
        "swab"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_core::filters::run_filter;
    use pla_core::metrics;

    fn noisy_trend(n: usize, seed: u64) -> Signal {
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Signal::from_values(
            &(0..n)
                .map(|j| {
                    let t = j as f64;
                    (t * 0.02).sin() * 10.0 + rnd() * 0.3
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn guarantee_holds_for_all_lookaheads() {
        let signal = noisy_trend(1200, 3);
        for kind in [Lookahead::Linear, Lookahead::Swing, Lookahead::Slide] {
            let mut swab = Swab::new(&[0.5], 128, kind).unwrap();
            let report = metrics::evaluate(&mut swab, &signal).unwrap();
            assert!(
                report.error.max_abs_overall() <= 0.5 * (1.0 + 1e-6),
                "{}: max err {}",
                kind.label(),
                report.error.max_abs_overall()
            );
            assert_eq!(report.n_points, signal.len());
        }
    }

    #[test]
    fn buffer_bounds_pending_points() {
        let signal = noisy_trend(600, 4);
        let mut swab = Swab::new(&[10.0], 64, Lookahead::Slide).unwrap();
        let mut out: Vec<Segment> = Vec::new();
        for (t, x) in signal.iter() {
            swab.push(t, x, &mut out).unwrap();
            assert!(swab.pending_points() <= 64);
        }
        swab.finish(&mut out).unwrap();
        assert_eq!(swab.pending_points(), 0);
    }

    #[test]
    fn straight_line_is_few_segments() {
        let signal = Signal::from_values(&(0..256).map(|i| i as f64).collect::<Vec<_>>());
        let mut swab = Swab::new(&[0.1], 64, Lookahead::Slide).unwrap();
        let segs = run_filter(&mut swab, &signal).unwrap();
        // Bounded buffering caps segment length at the capacity, so a
        // perfect line still yields ~n/capacity segments, each exact.
        assert!(segs.len() <= 256 / 32, "{} segments", segs.len());
        for s in &segs {
            assert!((s.slope(0) - 1.0).abs() < 1e-6 || s.n_points == 1);
        }
    }

    #[test]
    fn slide_lookahead_is_at_least_as_good_as_linear() {
        // The §6 complementarity claim: a better online component gives
        // SWAB better (or equal) segment boundaries.
        let signal = noisy_trend(2000, 5);
        let eps = 0.6;
        let count = |kind: Lookahead| -> usize {
            let mut swab = Swab::new(&[eps], 256, kind).unwrap();
            run_filter(&mut swab, &signal).unwrap().len()
        };
        let slide = count(Lookahead::Slide);
        let linear = count(Lookahead::Linear);
        assert!(
            slide <= linear + 2,
            "swab(slide) {slide} segments should not trail swab(linear) {linear}"
        );
    }

    #[test]
    fn n_points_accounting_totals() {
        let signal = noisy_trend(777, 6);
        let mut swab = Swab::new(&[0.4], 100, Lookahead::Swing).unwrap();
        let segs = run_filter(&mut swab, &signal).unwrap();
        let total: u32 = segs.iter().map(|s| s.n_points).sum();
        assert_eq!(total as usize, signal.len());
    }

    #[test]
    fn reusable_after_finish() {
        let signal = noisy_trend(300, 7);
        let mut swab = Swab::new(&[0.5], 64, Lookahead::Slide).unwrap();
        let a = run_filter(&mut swab, &signal).unwrap();
        let b = run_filter(&mut swab, &signal).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_tiny_capacity() {
        assert!(Swab::new(&[1.0], 3, Lookahead::Linear).is_err());
        assert!(Swab::new(&[], 64, Lookahead::Linear).is_err());
    }
}
