//! Property tests: SWAB output honours the same L∞ guarantee as the
//! online filters, for arbitrary streams, buffers, and lookaheads.

use proptest::prelude::*;

use pla_core::filters::{run_filter, StreamFilter};
use pla_core::{GapPolicy, Polyline, Signal};
use pla_swab::{bottom_up, Lookahead, Swab};

fn signal_strategy() -> impl Strategy<Value = Signal> {
    (2usize..150, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut x = 0.0;
        Signal::from_values(
            &(0..n)
                .map(|_| {
                    x += rnd() * 2.0;
                    x
                })
                .collect::<Vec<_>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Offline bottom-up: guarantee + exact point accounting.
    #[test]
    fn bottom_up_guarantee(signal in signal_strategy(), eps in 0.05f64..5.0) {
        let segs = bottom_up(&signal, &[eps]).unwrap();
        let total: u32 = segs.iter().map(|s| s.n_points).sum();
        prop_assert_eq!(total as usize, signal.len());
        let poly = Polyline::new(segs);
        for (t, x) in signal.iter() {
            let v = poly.eval(t, 0, GapPolicy::Strict);
            prop_assert!(v.is_some(), "t={t} uncovered");
            prop_assert!(
                (v.unwrap() - x[0]).abs() <= eps * (1.0 + 1e-6),
                "bottom-up broke ε at t={t}"
            );
        }
    }

    /// Streaming SWAB: guarantee for every lookahead, buffer bound held.
    #[test]
    fn swab_guarantee(
        signal in signal_strategy(),
        eps in 0.05f64..5.0,
        cap in 8usize..128,
    ) {
        for kind in [Lookahead::Linear, Lookahead::Swing, Lookahead::Slide] {
            let mut swab = Swab::new(&[eps], cap, kind).unwrap();
            let mut out = Vec::new();
            for (t, x) in signal.iter() {
                swab.push(t, x, &mut out).unwrap();
                prop_assert!(swab.pending_points() <= cap);
            }
            swab.finish(&mut out).unwrap();
            let total: u32 = out.iter().map(|s| s.n_points).sum();
            prop_assert_eq!(total as usize, signal.len());
            let poly = Polyline::new(out);
            for (t, x) in signal.iter() {
                let v = poly.eval(t, 0, GapPolicy::Strict);
                prop_assert!(v.is_some(), "{}: t={t} uncovered", kind.label());
                prop_assert!(
                    (v.unwrap() - x[0]).abs() <= eps * (1.0 + 1e-6),
                    "{} broke ε at t={t}",
                    kind.label()
                );
            }
        }
    }

    /// SWAB is deterministic and reusable.
    #[test]
    fn swab_deterministic(signal in signal_strategy(), eps in 0.1f64..3.0) {
        let mut swab = Swab::new(&[eps], 64, Lookahead::Slide).unwrap();
        let a = run_filter(&mut swab, &signal).unwrap();
        let b = run_filter(&mut swab, &signal).unwrap();
        prop_assert_eq!(a, b);
    }
}
