//! End-to-end pipeline simulation: transmitter → channel → receiver,
//! measuring the receiver lag the paper bounds with `m_max_lag` (§2.1).

use pla_core::filters::StreamFilter;
use pla_core::{FilterError, Signal};

use crate::receiver::Receiver;
use crate::transmitter::{Transmitter, TransmitterStats};
use crate::wire::Codec;

/// Result of a lag simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LagReport {
    /// Maximum over time of "samples observed by the transmitter that the
    /// receiver could not yet represent".
    pub max_lag: usize,
    /// Final transmitter counters.
    pub stats: TransmitterStats,
    /// Messages seen by the receiver.
    pub messages_received: u64,
}

/// Streams `signal` through `filter` and a lossless channel, measuring
/// the receiver lag after every sample.
///
/// The lag at step `j` counts samples whose timestamp exceeds the
/// receiver's [`covered_through`](Receiver::covered_through) — exactly the
/// "number of data points the receiver is lagging behind the transmitter"
/// of §2.1.
pub fn simulate_lag<F, C>(
    filter: F,
    codec_tx: C,
    codec_rx: C,
    signal: &Signal,
) -> Result<LagReport, FilterError>
where
    F: StreamFilter,
    C: Codec,
{
    let dims = signal.dims();
    let mut tx = Transmitter::new(filter, codec_tx);
    let mut rx = Receiver::new(codec_rx, dims);
    let mut max_lag = 0usize;
    let times = signal.times();
    for (j, (t, x)) in signal.iter().enumerate() {
        tx.push(t, x).expect("signal samples are valid");
        rx.consume(tx.take_bytes()).expect("lossless channel");
        let covered = rx.covered_through();
        // Samples up to index j, newest first, that outrun the receiver.
        let lag = times[..=j].iter().rev().take_while(|&&tt| tt > covered).count();
        max_lag = max_lag.max(lag);
    }
    tx.finish()?;
    rx.consume(tx.take_bytes()).expect("lossless channel");
    Ok(LagReport { max_lag, stats: tx.stats(), messages_received: rx.messages() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FixedCodec;
    use pla_core::filters::{CacheFilter, SlideFilter, SwingFilter};

    fn smooth_signal(n: usize) -> Signal {
        Signal::from_values(&(0..n).map(|i| (i as f64 * 0.01).sin() * 3.0).collect::<Vec<_>>())
    }

    #[test]
    fn unbounded_swing_lag_grows_with_interval_length() {
        let report = simulate_lag(
            SwingFilter::new(&[5.0]).unwrap(),
            FixedCodec,
            FixedCodec,
            &smooth_signal(500),
        )
        .unwrap();
        // A wide ε keeps one interval open for a long time: lag is large.
        assert!(report.max_lag > 50, "lag {}", report.max_lag);
    }

    #[test]
    fn max_lag_bound_is_enforced_end_to_end() {
        for m in [2usize, 5, 16] {
            let report = simulate_lag(
                SwingFilter::builder(&[5.0]).max_lag(m).build().unwrap(),
                FixedCodec,
                FixedCodec,
                &smooth_signal(400),
            )
            .unwrap();
            assert!(report.max_lag <= m, "swing lag {} exceeds bound {m}", report.max_lag);
            let report = simulate_lag(
                SlideFilter::builder(&[5.0]).max_lag(m).build().unwrap(),
                FixedCodec,
                FixedCodec,
                &smooth_signal(400),
            )
            .unwrap();
            assert!(report.max_lag <= m, "slide lag {} exceeds bound {m}", report.max_lag);
        }
    }

    #[test]
    fn cache_lag_is_bounded_by_run_length() {
        // This segment-based transport ships a cache run's Hold message
        // when the run *ends* (the segment is only final then), so the
        // wire-level lag tracks the run length. A deployment wanting the
        // paper's zero-lag cache behaviour transmits the recorded value at
        // run start instead — which is what
        // `CacheFilter::pending_points()` models.
        let signal = smooth_signal(300);
        let report =
            simulate_lag(CacheFilter::new(&[0.5]).unwrap(), FixedCodec, FixedCodec, &signal)
                .unwrap();
        assert!(report.max_lag <= signal.len(), "cache lag {}", report.max_lag);
        assert!(report.stats.recordings > 1);
    }
}
