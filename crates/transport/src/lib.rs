//! # pla-transport — transmitter/receiver substrate
//!
//! The paper's motivating deployment (§1–2) is a transmitter (sensor,
//! monitored host) that filters its stream locally and a receiver (the
//! DSMS / repository) that reconstructs the approximation from the
//! recordings it is sent. This crate builds that pipeline:
//!
//! * [`wire`] — the message protocol and two byte codecs (fixed-width
//!   and a delta/varint compact codec);
//! * [`Transmitter`] — wraps any [`StreamFilter`](pla_core::filters::StreamFilter)
//!   and turns its segments into wire messages, counting messages, bytes,
//!   and recordings;
//! * [`Receiver`] — decodes messages back into segments and tracks how far
//!   its reconstruction reaches (`covered_through`), which defines the
//!   *lag*;
//! * [`StreamDemux`] — the multi-stream receiver: one connection carries
//!   many logical streams, interleaved behind `StreamFrame` headers, and
//!   the demultiplexer rebuilds one segment log per stream;
//! * [`simulate_lag`] — end-to-end lag measurement backing the paper's
//!   `m_max_lag` bound;
//! * [`packing`] — the §5.4 analysis: compressing `d` dimensions jointly
//!   versus independently, with the `(d+1)/2d` time-redundancy factor
//!   measured rather than assumed.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod channel;
pub mod packing;
mod receiver;
mod transmitter;
pub mod wire;

pub use channel::simulate_lag;
pub use receiver::{ReceiveError, Receiver, SeqOutcome, StreamDemux};
pub use transmitter::{Transmitter, TransmitterStats};
