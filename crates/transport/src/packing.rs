//! The §5.4 analysis: joint versus independent compression of correlated
//! dimensions.
//!
//! Compressing a `d`-dimensional signal jointly records `d + 1` scalars
//! per recording (one shared timestamp), while compressing each dimension
//! independently records 2 scalars per recording but repeats the time
//! information `d` times. The paper's model: with a per-dimension
//! compression ratio `r`, independent compression achieves an effective
//! ratio of `r · (d+1) / 2d`. This module *measures* both sides with real
//! filter runs instead of assuming the model.

use pla_core::filters::{run_filter, StreamFilter};
use pla_core::{FilterError, Signal};

/// Outcome of a joint-vs-independent comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PackingComparison {
    /// Dimensions of the signal.
    pub dims: usize,
    /// Samples in the signal.
    pub n_points: usize,
    /// Recordings of the joint run.
    pub joint_recordings: u64,
    /// Recordings per independent 1-D run.
    pub independent_recordings: Vec<u64>,
    /// Joint compression ratio in recording units (`n / recordings`), the
    /// §5.1 metric.
    pub joint_cr: f64,
    /// Effective independent compression ratio in *scalar* units:
    /// `n·(d+1) / Σᵢ 2·recordingsᵢ` — the §5.4 accounting.
    pub independent_cr: f64,
    /// The paper's closed-form factor `(d+1)/2d` applied to the mean
    /// per-dimension ratio, for comparison with the measured value.
    pub independent_cr_model: f64,
}

impl PackingComparison {
    /// Whether joint compression wins under the scalar accounting.
    pub fn joint_wins(&self) -> bool {
        self.joint_cr > self.independent_cr
    }
}

/// Runs `make_filter`-built filters jointly on `signal` and independently
/// on each of its dimensions, returning both accountings.
///
/// `make_filter` receives the per-run epsilon slice (length `d` for the
/// joint run, length 1 for each projection).
pub fn compare_joint_vs_independent<F>(
    signal: &Signal,
    eps: &[f64],
    mut make_filter: F,
) -> Result<PackingComparison, FilterError>
where
    F: FnMut(&[f64]) -> Box<dyn StreamFilter>,
{
    assert_eq!(eps.len(), signal.dims(), "one ε per dimension");
    let d = signal.dims();
    let n = signal.len();

    let mut joint = make_filter(eps);
    let joint_segments = run_filter(joint.as_mut(), signal)?;
    let joint_recordings: u64 = joint_segments.iter().map(|s| s.new_recordings as u64).sum();

    let mut independent_recordings = Vec::with_capacity(d);
    for dim in 0..d {
        let proj = signal.project(dim);
        let mut f = make_filter(&eps[dim..=dim]);
        let segs = run_filter(f.as_mut(), &proj)?;
        independent_recordings.push(segs.iter().map(|s| s.new_recordings as u64).sum());
    }

    let joint_cr = if joint_recordings == 0 { 0.0 } else { n as f64 / joint_recordings as f64 };
    let indep_total: u64 = independent_recordings.iter().sum();
    let independent_cr = if indep_total == 0 {
        0.0
    } else {
        (n as f64 * (d as f64 + 1.0)) / (2.0 * indep_total as f64)
    };
    // Paper model: mean per-dimension recording-unit ratio times (d+1)/2d.
    let mean_dim_cr = if indep_total == 0 {
        0.0
    } else {
        independent_recordings
            .iter()
            .map(|&r| if r == 0 { 0.0 } else { n as f64 / r as f64 })
            .sum::<f64>()
            / d as f64
    };
    let independent_cr_model = mean_dim_cr * (d as f64 + 1.0) / (2.0 * d as f64);

    Ok(PackingComparison {
        dims: d,
        n_points: n,
        joint_recordings,
        independent_recordings,
        joint_cr,
        independent_cr,
        independent_cr_model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pla_core::filters::SlideFilter;
    use pla_signal::{correlated_walk, WalkParams};

    fn slide_factory(eps: &[f64]) -> Box<dyn StreamFilter> {
        Box::new(SlideFilter::new(eps).unwrap())
    }

    #[test]
    fn identical_dimensions_favour_joint_compression() {
        // ρ = 1: all dimensions move together; joint compression shares
        // both segmentation and timestamps.
        let signal = correlated_walk(5, 1.0, WalkParams { n: 4000, seed: 7, ..Default::default() });
        let eps = vec![1.0; 5];
        let cmp = compare_joint_vs_independent(&signal, &eps, slide_factory).unwrap();
        assert!(cmp.joint_wins(), "joint {} vs independent {}", cmp.joint_cr, cmp.independent_cr);
    }

    #[test]
    fn independent_dimensions_favour_independent_compression() {
        // ρ = 0: any dimension's violation splits everyone's interval in
        // the joint run.
        let signal = correlated_walk(5, 0.0, WalkParams { n: 4000, seed: 8, ..Default::default() });
        let eps = vec![1.0; 5];
        let cmp = compare_joint_vs_independent(&signal, &eps, slide_factory).unwrap();
        assert!(!cmp.joint_wins(), "joint {} vs independent {}", cmp.joint_cr, cmp.independent_cr);
    }

    #[test]
    fn model_and_measurement_agree_in_scalar_units() {
        // With equal per-dimension recording counts, the measured scalar
        // CR equals the model exactly; with unequal ones they still agree
        // within a modest factor. Use harmonic-vs-arithmetic slack.
        let signal = correlated_walk(3, 0.5, WalkParams { n: 3000, seed: 9, ..Default::default() });
        let eps = vec![1.0; 3];
        let cmp = compare_joint_vs_independent(&signal, &eps, slide_factory).unwrap();
        let ratio = cmp.independent_cr / cmp.independent_cr_model.max(1e-12);
        assert!(
            (0.5..=2.0).contains(&ratio),
            "measured {} vs model {}",
            cmp.independent_cr,
            cmp.independent_cr_model
        );
    }

    #[test]
    fn recordings_are_positive_and_bounded() {
        let signal = correlated_walk(2, 0.3, WalkParams { n: 500, seed: 10, ..Default::default() });
        let cmp = compare_joint_vs_independent(&signal, &[0.5, 0.5], slide_factory).unwrap();
        assert!(cmp.joint_recordings >= 2);
        assert_eq!(cmp.independent_recordings.len(), 2);
        for &r in &cmp.independent_recordings {
            assert!(r >= 2 && r <= 2 * signal.len() as u64);
        }
    }
}
