//! The receiver: byte stream → reconstructed segments + lag tracking.
//!
//! Two receivers share one reconstruction state machine ([`Assembler`]):
//!
//! * [`Receiver`] — the paper's single-stream endpoint. A
//!   [`StreamFrame`](Message::StreamFrame) header arriving here is a
//!   protocol violation: the sender is multiplexing and the bytes must go
//!   through a demultiplexer instead.
//! * [`StreamDemux`] — the multi-stream endpoint: every message is applied
//!   to the reconstruction state of the stream named by the most recent
//!   frame header, producing one segment log per stream.

use std::collections::BTreeMap;

use bytes::{Buf, Bytes};

use pla_core::Segment;

use crate::wire::{Codec, Message, WireError};

/// Errors raised by the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiveError {
    /// Decoding failed.
    Wire(WireError),
    /// Messages arrived in an order no transmitter produces (e.g. an
    /// `End` with no open segment).
    Protocol(&'static str),
    /// A sequenced frame skipped ahead: frames for one stream must arrive
    /// in contiguous sequence order (duplicates are tolerated and
    /// dropped; gaps mean the transport lost data).
    SequenceGap {
        /// The stream whose sequence jumped.
        stream: u64,
        /// The sequence number the demultiplexer expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
}

impl std::fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            Self::SequenceGap { stream, expected, got } => {
                write!(f, "stream#{stream}: expected frame seq {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ReceiveError {}

impl From<WireError> for ReceiveError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// The per-stream reconstruction state machine: wire messages in,
/// [`Segment`]s out. One per connection in [`Receiver`], one per stream in
/// [`StreamDemux`].
#[derive(Debug)]
struct Assembler {
    segments: Vec<Segment>,
    /// Open piece-wise-linear segment start, with its "came from an End"
    /// connectedness flag.
    open: Option<(f64, Vec<f64>, bool)>,
    /// Active piece-wise-constant hold.
    hold: Option<(f64, Vec<f64>)>,
    /// Highest time the reconstruction covers; `f64::INFINITY` while a
    /// hold or provisional line allows forward extrapolation.
    covered: f64,
    provisionals: u64,
    messages: u64,
}

impl Default for Assembler {
    fn default() -> Self {
        Self {
            segments: Vec::new(),
            open: None,
            hold: None,
            covered: f64::NEG_INFINITY,
            provisionals: 0,
            messages: 0,
        }
    }
}

impl Assembler {
    fn covered_finite(&self) -> f64 {
        if self.covered.is_finite() {
            self.covered
        } else {
            f64::NEG_INFINITY
        }
    }

    fn close_hold(&mut self, at: f64) {
        if let Some((t0, x)) = self.hold.take() {
            self.segments.push(constant_segment(t0, at, &x));
        }
    }

    /// Closes any active hold at the end of the stream.
    fn flush(&mut self) {
        if let Some((t0, x)) = self.hold.take() {
            self.segments.push(constant_segment(t0, t0.max(self.covered_finite()), &x));
        }
    }

    /// Applies one payload message. Frame headers never reach here — both
    /// receivers intercept them first.
    fn apply(&mut self, msg: Message) -> Result<(), ReceiveError> {
        self.messages += 1;
        match msg {
            Message::Hold { t, x } => {
                self.close_hold(t);
                self.open = None;
                self.hold = Some((t, x));
                self.covered = f64::INFINITY;
            }
            Message::Start { t, x } => {
                self.close_hold(t);
                if self.covered < t {
                    self.covered = t;
                }
                self.open = Some((t, x, false));
            }
            Message::End { t, x } => {
                let (t0, x0, connected) = self
                    .open
                    .take()
                    .ok_or(ReceiveError::Protocol("End without an open segment"))?;
                if t < t0 {
                    return Err(ReceiveError::Protocol("segment runs backwards"));
                }
                self.segments.push(Segment {
                    t_start: t0,
                    x_start: x0.into(),
                    t_end: t,
                    x_end: x.as_slice().into(),
                    connected,
                    n_points: 0,
                    new_recordings: if connected { 1 } else { 2 },
                });
                self.covered = t;
                // A connected successor may begin at this endpoint.
                self.open = Some((t, x, true));
            }
            Message::Point { t, x } => {
                self.close_hold(t);
                self.open = None;
                self.segments.push(Segment {
                    t_start: t,
                    x_start: x.as_slice().into(),
                    t_end: t,
                    x_end: x.into(),
                    connected: false,
                    n_points: 1,
                    new_recordings: 1,
                });
                self.covered = t;
            }
            Message::Provisional { .. } => {
                // The committed line lets the receiver extrapolate until
                // the segment's end recording arrives.
                self.provisionals += 1;
                self.covered = f64::INFINITY;
            }
            Message::StreamFrame { .. } => {
                unreachable!("frame headers are intercepted before apply")
            }
        }
        Ok(())
    }
}

/// Reconstructs segments from the transmitter's byte stream.
///
/// The receiver is *online*: [`consume`](Self::consume) may be called with
/// arbitrary byte chunks as they arrive (chunks must split on message
/// boundaries, which the paired [`Transmitter`](crate::Transmitter)
/// guarantees per drained batch). Reconstructed segments accumulate in
/// [`segments`](Self::segments); [`covered_through`](Self::covered_through)
/// reports how far the reconstruction currently reaches.
pub struct Receiver<C> {
    codec: C,
    dims: usize,
    asm: Assembler,
}

impl<C: Codec> Receiver<C> {
    /// Creates a receiver for `dims`-dimensional streams.
    pub fn new(codec: C, dims: usize) -> Self {
        Self { codec, dims, asm: Assembler::default() }
    }

    /// Segments reconstructed so far.
    pub fn segments(&self) -> &[Segment] {
        &self.asm.segments
    }

    /// Takes ownership of the reconstructed segments.
    pub fn into_segments(mut self) -> Vec<Segment> {
        self.flush();
        self.asm.segments
    }

    /// Highest timestamp the receiver can currently represent.
    pub fn covered_through(&self) -> f64 {
        self.asm.covered
    }

    /// Provisional updates received.
    pub fn provisionals(&self) -> u64 {
        self.asm.provisionals
    }

    /// Messages received.
    pub fn messages(&self) -> u64 {
        self.asm.messages
    }

    /// Decodes and applies every message in `bytes`.
    pub fn consume(&mut self, mut bytes: Bytes) -> Result<(), ReceiveError> {
        while bytes.remaining() > 0 {
            let msg = self.codec.decode(&mut bytes, self.dims)?;
            if matches!(msg, Message::StreamFrame { .. }) {
                return Err(ReceiveError::Protocol(
                    "StreamFrame on a single-stream receiver; use StreamDemux",
                ));
            }
            self.asm.apply(msg)?;
        }
        Ok(())
    }

    /// Closes any active hold at the end of the stream.
    pub fn flush(&mut self) {
        self.asm.flush();
    }
}

/// Demultiplexes one multi-stream connection into per-stream segment logs.
///
/// The transmitter interleaves [`Message::StreamFrame`] headers with
/// ordinary messages; every payload message is applied to the stream named
/// by the most recent header. Stream ids match `pla-ingest`'s `StreamId`
/// (the engine's per-shard fan-in log is exactly the feed a multiplexing
/// sender walks).
///
/// ```
/// use bytes::BytesMut;
/// use pla_transport::wire::{Codec, FixedCodec, Message};
/// use pla_transport::StreamDemux;
///
/// let mut codec = FixedCodec;
/// let mut buf = BytesMut::new();
/// for msg in [
///     Message::StreamFrame { stream: 7 },
///     Message::Start { t: 0.0, x: vec![0.0] },
///     Message::StreamFrame { stream: 9 },
///     Message::Point { t: 0.0, x: vec![5.0] },
///     Message::StreamFrame { stream: 7 },
///     Message::End { t: 4.0, x: vec![8.0] },
/// ] {
///     codec.encode(&msg, 1, &mut buf);
/// }
/// let mut demux = StreamDemux::new(FixedCodec, 1);
/// demux.consume(buf.freeze()).unwrap();
/// assert_eq!(demux.streams().collect::<Vec<_>>(), vec![7, 9]);
/// assert_eq!(demux.segments(7).unwrap().len(), 1);
/// assert_eq!(demux.segments(9).unwrap().len(), 1);
/// ```
pub struct StreamDemux<C> {
    codec: C,
    dims: usize,
    current: Option<u64>,
    streams: BTreeMap<u64, Assembler>,
    frames: u64,
    /// Per-stream next expected frame sequence number (sequenced mode,
    /// see [`consume_sequenced`](Self::consume_sequenced)). Streams only
    /// ever fed through plain [`consume`](Self::consume) have no entry.
    next_seq: BTreeMap<u64, u64>,
}

/// What [`StreamDemux::consume_sequenced`] did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqOutcome {
    /// The frame was new and its messages were applied.
    Applied,
    /// The frame's sequence number was already applied (a replay after
    /// reconnect); its bytes were dropped without touching any state.
    Duplicate,
}

impl<C: Codec> StreamDemux<C> {
    /// Creates a demultiplexer for `dims`-dimensional streams.
    pub fn new(codec: C, dims: usize) -> Self {
        Self {
            codec,
            dims,
            current: None,
            streams: BTreeMap::new(),
            frames: 0,
            next_seq: BTreeMap::new(),
        }
    }

    /// Decodes and applies every message in `bytes`, routing by the
    /// interleaved frame headers.
    ///
    /// A payload message arriving before any `StreamFrame` is a protocol
    /// violation: nothing says which stream it belongs to.
    pub fn consume(&mut self, mut bytes: Bytes) -> Result<(), ReceiveError> {
        while bytes.remaining() > 0 {
            let msg = self.codec.decode(&mut bytes, self.dims)?;
            if let Message::StreamFrame { stream } = msg {
                self.frames += 1;
                self.current = Some(stream);
                self.streams.entry(stream).or_default();
                continue;
            }
            let stream = self
                .current
                .ok_or(ReceiveError::Protocol("payload message before any StreamFrame"))?;
            self.streams.get_mut(&stream).expect("current stream is registered").apply(msg)?;
        }
        Ok(())
    }

    /// Applies one *sequenced frame*: a self-contained chunk of codec
    /// bytes for a single stream, tagged with a per-stream sequence
    /// number. This is the resumable-delivery entry point `pla-net`'s
    /// multiplexed transport uses: after a reconnect the sender replays
    /// every unacknowledged frame, and the sequence numbers let this side
    /// drop the ones it already applied, so the reconstruction is
    /// identical to an uninterrupted run.
    ///
    /// The contract, enforced here:
    ///
    /// * `seq` starts at 1 and increments by 1 per frame per stream.
    ///   `seq < expected` is a replay → [`SeqOutcome::Duplicate`], bytes
    ///   dropped untouched. `seq > expected` means the transport lost a
    ///   frame → [`ReceiveError::SequenceGap`].
    /// * The payload must begin with a [`Message::StreamFrame`] naming
    ///   `stream`, and every header inside the frame must name `stream`
    ///   too (one frame, one stream — otherwise dropping a duplicate
    ///   would also drop other streams' messages).
    /// * Each frame is decoded from a fresh codec state
    ///   ([`Codec::reset`]), so replayed frames decode identically no
    ///   matter what was decoded in between.
    ///
    /// On any error the frame is *not* counted as applied.
    pub fn consume_sequenced(
        &mut self,
        stream: u64,
        seq: u64,
        mut bytes: Bytes,
    ) -> Result<SeqOutcome, ReceiveError> {
        if seq == 0 {
            return Err(ReceiveError::Protocol("frame sequence numbers start at 1"));
        }
        let expected = self.next_seq.get(&stream).copied().unwrap_or(1);
        if seq < expected {
            return Ok(SeqOutcome::Duplicate);
        }
        if seq > expected {
            return Err(ReceiveError::SequenceGap { stream, expected, got: seq });
        }
        // Frames are coded independently (the sender resets its codec per
        // frame) so a replay decodes byte-identically regardless of what
        // arrived in between.
        self.codec.reset();
        let mut first = true;
        while bytes.remaining() > 0 {
            let msg = self.codec.decode(&mut bytes, self.dims)?;
            if let Message::StreamFrame { stream: s } = msg {
                if s != stream {
                    return Err(ReceiveError::Protocol(
                        "sequenced frame contains a header for a different stream",
                    ));
                }
                self.frames += 1;
                self.current = Some(s);
                self.streams.entry(s).or_default();
                first = false;
                continue;
            }
            if first {
                return Err(ReceiveError::Protocol(
                    "sequenced frame must begin with its own StreamFrame header",
                ));
            }
            self.streams.get_mut(&stream).expect("header registered above").apply(msg)?;
        }
        if first {
            return Err(ReceiveError::Protocol("sequenced frame carries no messages"));
        }
        self.next_seq.insert(stream, expected + 1);
        Ok(SeqOutcome::Applied)
    }

    /// Highest frame sequence number applied for `stream` (0 when none) —
    /// the cumulative acknowledgement point a transport should report
    /// back to the sender.
    pub fn ack_point(&self, stream: u64) -> u64 {
        self.next_seq.get(&stream).map_or(0, |n| n - 1)
    }

    /// Stream ids seen so far, ascending.
    pub fn streams(&self) -> impl Iterator<Item = u64> + '_ {
        self.streams.keys().copied()
    }

    /// Flushes one stream's reconstruction — closes its active hold, if
    /// any, appending the trailing constant segment to its log.
    ///
    /// [`into_segment_logs`](Self::into_segment_logs) does this for
    /// every stream at teardown; an *incremental* consumer (pla-net's
    /// collector publishes segments into a shared store as they
    /// reconstruct) calls this per stream the moment that stream's
    /// end-of-stream marker arrives, so the published log matches what
    /// a dedicated single-stream [`Receiver::into_segments`] would have
    /// produced. Flushing a stream mid-flight is *not* idempotent in
    /// effect (a later `Hold` would open a new hold), so callers flush
    /// only streams that are complete. Unknown streams are a no-op.
    pub fn flush_stream(&mut self, stream: u64) {
        if let Some(asm) = self.streams.get_mut(&stream) {
            asm.flush();
        }
    }

    /// Segments reconstructed so far for one stream (`None` if no frame
    /// header ever named it).
    pub fn segments(&self, stream: u64) -> Option<&[Segment]> {
        self.streams.get(&stream).map(|a| a.segments.as_slice())
    }

    /// Highest timestamp the reconstruction of `stream` reaches.
    pub fn covered_through(&self, stream: u64) -> Option<f64> {
        self.streams.get(&stream).map(|a| a.covered)
    }

    /// Frame headers seen.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Payload messages applied across all streams (frame headers not
    /// counted).
    pub fn messages(&self) -> u64 {
        self.streams.values().map(|a| a.messages).sum()
    }

    /// Flushes every stream and hands back the per-stream segment logs,
    /// ordered by stream id.
    pub fn into_segment_logs(self) -> BTreeMap<u64, Vec<Segment>> {
        self.streams
            .into_iter()
            .map(|(id, mut asm)| {
                asm.flush();
                (id, asm.segments)
            })
            .collect()
    }
}

fn constant_segment(t0: f64, t1: f64, x: &[f64]) -> Segment {
    Segment {
        t_start: t0,
        x_start: x.into(),
        t_end: t1.max(t0),
        x_end: x.into(),
        connected: false,
        n_points: 0,
        new_recordings: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{CompactCodec, FixedCodec};
    use bytes::BytesMut;

    fn encode(msgs: &[Message], dims: usize) -> Bytes {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        for m in msgs {
            codec.encode(m, dims, &mut buf);
        }
        buf.freeze()
    }

    #[test]
    fn flush_stream_closes_only_that_streams_hold() {
        let mut demux = StreamDemux::new(FixedCodec, 1);
        demux
            .consume(encode(
                &[
                    Message::StreamFrame { stream: 1 },
                    Message::Hold { t: 0.0, x: vec![4.0] },
                    Message::StreamFrame { stream: 2 },
                    Message::Hold { t: 0.0, x: vec![9.0] },
                ],
                1,
            ))
            .unwrap();
        assert_eq!(demux.segments(1).unwrap().len(), 0, "hold still open");
        demux.flush_stream(1);
        assert_eq!(demux.segments(1).unwrap().len(), 1, "flushed hold became a segment");
        assert_eq!(demux.segments(2).unwrap().len(), 0, "other stream untouched");
        demux.flush_stream(999); // unknown stream: no-op
                                 // The incremental flush matches the teardown flush.
        let logs = demux.into_segment_logs();
        assert_eq!(logs[&1].len(), 1);
        assert_eq!(logs[&2].len(), 1);
    }

    /// `flush_stream` on a stream with no open hold — already flushed,
    /// closed by an explicit `End`, or never carrying a message at all
    /// — must change nothing: the collector calls it when a stream's
    /// end-of-stream marker arrives, and replayed fins after a session
    /// resume hit the same path again.
    #[test]
    fn flush_stream_on_drained_or_empty_streams_changes_nothing() {
        let mut demux = StreamDemux::new(FixedCodec, 1);
        demux
            .consume(encode(
                &[
                    // Stream 1: an open hold to flush twice.
                    Message::StreamFrame { stream: 1 },
                    Message::Hold { t: 0.0, x: vec![4.0] },
                    // Stream 2: closed by an explicit End — no open hold.
                    Message::StreamFrame { stream: 2 },
                    Message::Start { t: 0.0, x: vec![1.0] },
                    Message::End { t: 3.0, x: vec![2.0] },
                    // Stream 3: a frame header and nothing else.
                    Message::StreamFrame { stream: 3 },
                ],
                1,
            ))
            .unwrap();
        demux.flush_stream(1);
        let after_first = demux.segments(1).unwrap().to_vec();
        assert_eq!(after_first.len(), 1);
        demux.flush_stream(1);
        assert_eq!(demux.segments(1).unwrap(), &after_first[..], "second flush is a no-op");
        assert_eq!(demux.covered_through(1), Some(f64::INFINITY), "a hold covers forward");

        let closed = demux.segments(2).unwrap().to_vec();
        assert_eq!(closed.len(), 1, "End already closed the segment");
        demux.flush_stream(2);
        assert_eq!(demux.segments(2).unwrap(), &closed[..], "nothing to flush after End");

        demux.flush_stream(3);
        assert_eq!(demux.segments(3).unwrap(), &[], "an empty stream flushes to nothing");
        assert_eq!(demux.covered_through(3), Some(f64::NEG_INFINITY));

        // Teardown agrees with every incremental answer.
        let logs = demux.into_segment_logs();
        assert_eq!(logs[&1], after_first);
        assert_eq!(logs[&2], closed);
        assert_eq!(logs[&3], vec![]);
    }

    #[test]
    fn start_end_chain_reconstructs_connected_flags() {
        let bytes = encode(
            &[
                Message::Start { t: 0.0, x: vec![0.0] },
                Message::End { t: 5.0, x: vec![5.0] },
                Message::End { t: 9.0, x: vec![1.0] }, // connected
                Message::Start { t: 10.0, x: vec![7.0] },
                Message::End { t: 12.0, x: vec![8.0] },
            ],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        rx.consume(bytes).unwrap();
        let segs = rx.segments();
        assert_eq!(segs.len(), 3);
        assert!(!segs[0].connected);
        assert!(segs[1].connected);
        assert_eq!(segs[1].t_start, 5.0);
        assert!(!segs[2].connected);
        assert_eq!(rx.covered_through(), 12.0);
    }

    #[test]
    fn holds_close_on_next_message() {
        let bytes = encode(
            &[Message::Hold { t: 0.0, x: vec![1.0] }, Message::Hold { t: 10.0, x: vec![2.0] }],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        rx.consume(bytes).unwrap();
        assert_eq!(rx.covered_through(), f64::INFINITY);
        let segs = rx.into_segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].t_start, 0.0);
        assert_eq!(segs[0].t_end, 10.0);
        assert_eq!(segs[0].x_start[0], 1.0);
    }

    #[test]
    fn end_without_start_is_protocol_error() {
        let bytes = encode(&[Message::End { t: 1.0, x: vec![0.0] }], 1);
        let mut rx = Receiver::new(FixedCodec, 1);
        assert!(matches!(rx.consume(bytes), Err(ReceiveError::Protocol(_))));
    }

    #[test]
    fn provisional_extends_coverage() {
        let bytes = encode(
            &[
                Message::Start { t: 0.0, x: vec![0.0] },
                Message::Provisional {
                    t_anchor: 0.0,
                    x_anchor: vec![0.0],
                    slopes: vec![1.0],
                    covers_through: 9.0,
                },
            ],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        rx.consume(bytes).unwrap();
        assert_eq!(rx.covered_through(), f64::INFINITY);
        assert_eq!(rx.provisionals(), 1);
    }

    #[test]
    fn incremental_chunks_reassemble() {
        let all = encode(
            &[Message::Start { t: 0.0, x: vec![0.0] }, Message::End { t: 4.0, x: vec![4.0] }],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        // one message per chunk (17 bytes each for 1-D fixed codec)
        let mid = all.len() / 2;
        rx.consume(all.slice(0..mid)).unwrap();
        assert_eq!(rx.segments().len(), 0);
        rx.consume(all.slice(mid..)).unwrap();
        assert_eq!(rx.segments().len(), 1);
    }

    #[test]
    fn single_stream_receiver_rejects_frame_headers() {
        let bytes = encode(
            &[Message::StreamFrame { stream: 1 }, Message::Point { t: 0.0, x: vec![1.0] }],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        assert!(matches!(rx.consume(bytes), Err(ReceiveError::Protocol(_))));
    }

    #[test]
    fn demux_routes_interleaved_streams() {
        let bytes = encode(
            &[
                Message::StreamFrame { stream: 3 },
                Message::Start { t: 0.0, x: vec![0.0] },
                Message::StreamFrame { stream: 8 },
                Message::Hold { t: 0.0, x: vec![5.0] },
                Message::StreamFrame { stream: 3 },
                Message::End { t: 10.0, x: vec![10.0] },
                Message::End { t: 14.0, x: vec![6.0] }, // still stream 3: connected
                Message::StreamFrame { stream: 8 },
                Message::Hold { t: 20.0, x: vec![7.0] },
            ],
            1,
        );
        let mut demux = StreamDemux::new(FixedCodec, 1);
        demux.consume(bytes).unwrap();
        assert_eq!(demux.streams().collect::<Vec<_>>(), vec![3, 8]);
        assert_eq!(demux.frames(), 4);
        assert_eq!(demux.messages(), 5);
        assert_eq!(demux.covered_through(3), Some(14.0));
        assert_eq!(demux.covered_through(8), Some(f64::INFINITY));
        let logs = demux.into_segment_logs();
        let s3 = &logs[&3];
        assert_eq!(s3.len(), 2);
        assert!(!s3[0].connected);
        assert!(s3[1].connected);
        // Stream 8: two holds, the second flushed at end of stream.
        assert_eq!(logs[&8].len(), 2);
        assert_eq!(logs[&8][0].t_end, 20.0);
    }

    #[test]
    fn demux_requires_a_frame_header_first() {
        let bytes = encode(&[Message::Point { t: 0.0, x: vec![1.0] }], 1);
        let mut demux = StreamDemux::new(FixedCodec, 1);
        assert!(matches!(demux.consume(bytes), Err(ReceiveError::Protocol(_))));
    }

    #[test]
    fn demux_per_stream_state_is_independent() {
        // An End for stream 2 must not see stream 1's open segment.
        let bytes = encode(
            &[
                Message::StreamFrame { stream: 1 },
                Message::Start { t: 0.0, x: vec![0.0] },
                Message::StreamFrame { stream: 2 },
                Message::End { t: 1.0, x: vec![1.0] },
            ],
            1,
        );
        let mut demux = StreamDemux::new(FixedCodec, 1);
        assert!(matches!(demux.consume(bytes), Err(ReceiveError::Protocol(_))));
    }

    fn frame_bytes(stream: u64, msgs: &[Message]) -> Bytes {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        codec.encode(&Message::StreamFrame { stream }, 1, &mut buf);
        for m in msgs {
            codec.encode(m, 1, &mut buf);
        }
        buf.freeze()
    }

    #[test]
    fn sequenced_frames_apply_in_order_and_drop_duplicates() {
        let mut demux = StreamDemux::new(FixedCodec, 1);
        let f1 = frame_bytes(5, &[Message::Start { t: 0.0, x: vec![0.0] }]);
        let f2 = frame_bytes(5, &[Message::End { t: 4.0, x: vec![4.0] }]);
        assert_eq!(demux.consume_sequenced(5, 1, f1.clone()).unwrap(), SeqOutcome::Applied);
        assert_eq!(demux.ack_point(5), 1);
        // Replay of frame 1 (e.g. after a reconnect): dropped untouched.
        assert_eq!(demux.consume_sequenced(5, 1, f1).unwrap(), SeqOutcome::Duplicate);
        assert_eq!(demux.ack_point(5), 1);
        assert_eq!(demux.consume_sequenced(5, 2, f2.clone()).unwrap(), SeqOutcome::Applied);
        assert_eq!(demux.consume_sequenced(5, 2, f2).unwrap(), SeqOutcome::Duplicate);
        assert_eq!(demux.ack_point(5), 2);
        let logs = demux.into_segment_logs();
        assert_eq!(logs[&5].len(), 1, "duplicates must not duplicate segments");
    }

    #[test]
    fn sequence_gaps_are_typed_errors() {
        let mut demux = StreamDemux::new(FixedCodec, 1);
        let f = frame_bytes(9, &[Message::Point { t: 0.0, x: vec![1.0] }]);
        assert_eq!(
            demux.consume_sequenced(9, 3, f.clone()),
            Err(ReceiveError::SequenceGap { stream: 9, expected: 1, got: 3 })
        );
        assert_eq!(
            demux.consume_sequenced(9, 0, f),
            Err(ReceiveError::Protocol("frame sequence numbers start at 1"))
        );
        assert_eq!(demux.ack_point(9), 0);
    }

    #[test]
    fn sequenced_frames_must_be_single_stream_and_self_labelled() {
        let mut demux = StreamDemux::new(FixedCodec, 1);
        // Payload whose header names a different stream.
        let mislabelled = frame_bytes(8, &[Message::Point { t: 0.0, x: vec![1.0] }]);
        assert!(matches!(
            demux.consume_sequenced(7, 1, mislabelled),
            Err(ReceiveError::Protocol(_))
        ));
        // Payload with no leading header at all.
        let headerless = encode(&[Message::Point { t: 0.0, x: vec![1.0] }], 1);
        assert!(matches!(
            demux.consume_sequenced(7, 1, headerless),
            Err(ReceiveError::Protocol(_))
        ));
        // Empty payload.
        assert!(matches!(
            demux.consume_sequenced(7, 1, Bytes::from_static(&[])),
            Err(ReceiveError::Protocol(_))
        ));
        // A failed frame is not counted as applied.
        assert_eq!(demux.ack_point(7), 0);
    }

    #[test]
    fn sequenced_compact_codec_replay_is_idempotent() {
        // The compact codec's delta predictor is reset per frame, so a
        // replayed frame decodes identically even though other frames
        // were decoded in between.
        let enc_frame = |stream: u64, msgs: &[Message]| {
            let mut codec = CompactCodec::new(0.01, &[0.01]);
            let mut buf = BytesMut::new();
            codec.encode(&Message::StreamFrame { stream }, 1, &mut buf);
            for m in msgs {
                codec.encode(m, 1, &mut buf);
            }
            buf.freeze()
        };
        let a1 = enc_frame(1, &[Message::Start { t: 0.0, x: vec![1.0] }]);
        let b1 = enc_frame(2, &[Message::Start { t: 0.0, x: vec![-1.0] }]);
        let a2 = enc_frame(1, &[Message::End { t: 8.0, x: vec![3.0] }]);
        let mut demux = StreamDemux::new(CompactCodec::new(0.01, &[0.01]), 1);
        demux.consume_sequenced(1, 1, a1.clone()).unwrap();
        demux.consume_sequenced(2, 1, b1).unwrap();
        assert_eq!(demux.consume_sequenced(1, 1, a1).unwrap(), SeqOutcome::Duplicate);
        demux.consume_sequenced(1, 2, a2).unwrap();
        let logs = demux.into_segment_logs();
        assert_eq!(logs[&1].len(), 1);
        assert!((logs[&1][0].x_end[0] - 3.0).abs() <= 0.005 + 1e-12);
    }

    #[test]
    fn demux_works_through_the_compact_codec() {
        let msgs = [
            Message::StreamFrame { stream: 40 },
            Message::Start { t: 0.0, x: vec![1.0] },
            Message::StreamFrame { stream: 41 },
            Message::Start { t: 0.0, x: vec![-1.0] },
            Message::StreamFrame { stream: 40 },
            Message::End { t: 8.0, x: vec![3.0] },
            Message::StreamFrame { stream: 41 },
            Message::End { t: 8.0, x: vec![-3.0] },
        ];
        let mut enc = CompactCodec::new(0.01, &[0.01]);
        let mut buf = BytesMut::new();
        for m in &msgs {
            enc.encode(m, 1, &mut buf);
        }
        let mut demux = StreamDemux::new(CompactCodec::new(0.01, &[0.01]), 1);
        demux.consume(buf.freeze()).unwrap();
        let logs = demux.into_segment_logs();
        assert_eq!(logs.len(), 2);
        assert_eq!(logs[&40].len(), 1);
        assert_eq!(logs[&41].len(), 1);
        assert!((logs[&40][0].x_end[0] - 3.0).abs() <= 0.005 + 1e-12);
        assert!((logs[&41][0].x_end[0] + 3.0).abs() <= 0.005 + 1e-12);
    }
}
