//! The receiver: byte stream → reconstructed segments + lag tracking.

use bytes::{Buf, Bytes};

use pla_core::Segment;

use crate::wire::{Codec, Message, WireError};

/// Errors raised by the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiveError {
    /// Decoding failed.
    Wire(WireError),
    /// Messages arrived in an order no transmitter produces (e.g. an
    /// `End` with no open segment).
    Protocol(&'static str),
}

impl std::fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wire(e) => write!(f, "wire error: {e}"),
            Self::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ReceiveError {}

impl From<WireError> for ReceiveError {
    fn from(e: WireError) -> Self {
        Self::Wire(e)
    }
}

/// Reconstructs segments from the transmitter's byte stream.
///
/// The receiver is *online*: [`consume`](Self::consume) may be called with
/// arbitrary byte chunks as they arrive (chunks must split on message
/// boundaries, which the paired [`Transmitter`](crate::Transmitter)
/// guarantees per drained batch). Reconstructed segments accumulate in
/// [`segments`](Self::segments); [`covered_through`](Self::covered_through)
/// reports how far the reconstruction currently reaches.
pub struct Receiver<C> {
    codec: C,
    dims: usize,
    segments: Vec<Segment>,
    /// Open piece-wise-linear segment start, with its "came from an End"
    /// connectedness flag.
    open: Option<(f64, Vec<f64>, bool)>,
    /// Active piece-wise-constant hold.
    hold: Option<(f64, Vec<f64>)>,
    /// Highest time the reconstruction covers; `f64::INFINITY` while a
    /// hold or provisional line allows forward extrapolation.
    covered: f64,
    provisionals: u64,
    messages: u64,
}

impl<C: Codec> Receiver<C> {
    /// Creates a receiver for `dims`-dimensional streams.
    pub fn new(codec: C, dims: usize) -> Self {
        Self {
            codec,
            dims,
            segments: Vec::new(),
            open: None,
            hold: None,
            covered: f64::NEG_INFINITY,
            provisionals: 0,
            messages: 0,
        }
    }

    /// Segments reconstructed so far.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Takes ownership of the reconstructed segments.
    pub fn into_segments(mut self) -> Vec<Segment> {
        self.flush();
        self.segments
    }

    /// Highest timestamp the receiver can currently represent.
    pub fn covered_through(&self) -> f64 {
        self.covered
    }

    /// Provisional updates received.
    pub fn provisionals(&self) -> u64 {
        self.provisionals
    }

    /// Messages received.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Decodes and applies every message in `bytes`.
    pub fn consume(&mut self, mut bytes: Bytes) -> Result<(), ReceiveError> {
        while bytes.remaining() > 0 {
            let msg = self.codec.decode(&mut bytes, self.dims)?;
            self.apply(msg)?;
        }
        Ok(())
    }

    /// Closes any active hold at the end of the stream.
    pub fn flush(&mut self) {
        if let Some((t0, x)) = self.hold.take() {
            self.push_segment(constant_segment(t0, t0.max(self.covered_finite()), &x));
        }
    }

    fn covered_finite(&self) -> f64 {
        if self.covered.is_finite() {
            self.covered
        } else {
            f64::NEG_INFINITY
        }
    }

    fn close_hold(&mut self, at: f64) {
        if let Some((t0, x)) = self.hold.take() {
            self.push_segment(constant_segment(t0, at, &x));
        }
    }

    fn push_segment(&mut self, seg: Segment) {
        self.segments.push(seg);
    }

    fn apply(&mut self, msg: Message) -> Result<(), ReceiveError> {
        self.messages += 1;
        match msg {
            Message::Hold { t, x } => {
                self.close_hold(t);
                self.open = None;
                self.hold = Some((t, x));
                self.covered = f64::INFINITY;
            }
            Message::Start { t, x } => {
                self.close_hold(t);
                if self.covered < t {
                    self.covered = t;
                }
                self.open = Some((t, x, false));
            }
            Message::End { t, x } => {
                let (t0, x0, connected) = self
                    .open
                    .take()
                    .ok_or(ReceiveError::Protocol("End without an open segment"))?;
                if t < t0 {
                    return Err(ReceiveError::Protocol("segment runs backwards"));
                }
                self.push_segment(Segment {
                    t_start: t0,
                    x_start: x0.into_boxed_slice(),
                    t_end: t,
                    x_end: x.clone().into_boxed_slice(),
                    connected,
                    n_points: 0,
                    new_recordings: if connected { 1 } else { 2 },
                });
                self.covered = t;
                // A connected successor may begin at this endpoint.
                self.open = Some((t, x, true));
            }
            Message::Point { t, x } => {
                self.close_hold(t);
                self.open = None;
                self.push_segment(Segment {
                    t_start: t,
                    x_start: x.clone().into_boxed_slice(),
                    t_end: t,
                    x_end: x.into_boxed_slice(),
                    connected: false,
                    n_points: 1,
                    new_recordings: 1,
                });
                self.covered = t;
            }
            Message::Provisional { .. } => {
                // The committed line lets the receiver extrapolate until
                // the segment's end recording arrives.
                self.provisionals += 1;
                self.covered = f64::INFINITY;
            }
        }
        Ok(())
    }
}

fn constant_segment(t0: f64, t1: f64, x: &[f64]) -> Segment {
    Segment {
        t_start: t0,
        x_start: x.to_vec().into_boxed_slice(),
        t_end: t1.max(t0),
        x_end: x.to_vec().into_boxed_slice(),
        connected: false,
        n_points: 0,
        new_recordings: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FixedCodec;
    use bytes::BytesMut;

    fn encode(msgs: &[Message], dims: usize) -> Bytes {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        for m in msgs {
            codec.encode(m, dims, &mut buf);
        }
        buf.freeze()
    }

    #[test]
    fn start_end_chain_reconstructs_connected_flags() {
        let bytes = encode(
            &[
                Message::Start { t: 0.0, x: vec![0.0] },
                Message::End { t: 5.0, x: vec![5.0] },
                Message::End { t: 9.0, x: vec![1.0] }, // connected
                Message::Start { t: 10.0, x: vec![7.0] },
                Message::End { t: 12.0, x: vec![8.0] },
            ],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        rx.consume(bytes).unwrap();
        let segs = rx.segments();
        assert_eq!(segs.len(), 3);
        assert!(!segs[0].connected);
        assert!(segs[1].connected);
        assert_eq!(segs[1].t_start, 5.0);
        assert!(!segs[2].connected);
        assert_eq!(rx.covered_through(), 12.0);
    }

    #[test]
    fn holds_close_on_next_message() {
        let bytes = encode(
            &[Message::Hold { t: 0.0, x: vec![1.0] }, Message::Hold { t: 10.0, x: vec![2.0] }],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        rx.consume(bytes).unwrap();
        assert_eq!(rx.covered_through(), f64::INFINITY);
        let segs = rx.into_segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].t_start, 0.0);
        assert_eq!(segs[0].t_end, 10.0);
        assert_eq!(segs[0].x_start[0], 1.0);
    }

    #[test]
    fn end_without_start_is_protocol_error() {
        let bytes = encode(&[Message::End { t: 1.0, x: vec![0.0] }], 1);
        let mut rx = Receiver::new(FixedCodec, 1);
        assert!(matches!(rx.consume(bytes), Err(ReceiveError::Protocol(_))));
    }

    #[test]
    fn provisional_extends_coverage() {
        let bytes = encode(
            &[
                Message::Start { t: 0.0, x: vec![0.0] },
                Message::Provisional {
                    t_anchor: 0.0,
                    x_anchor: vec![0.0],
                    slopes: vec![1.0],
                    covers_through: 9.0,
                },
            ],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        rx.consume(bytes).unwrap();
        assert_eq!(rx.covered_through(), f64::INFINITY);
        assert_eq!(rx.provisionals(), 1);
    }

    #[test]
    fn incremental_chunks_reassemble() {
        let all = encode(
            &[Message::Start { t: 0.0, x: vec![0.0] }, Message::End { t: 4.0, x: vec![4.0] }],
            1,
        );
        let mut rx = Receiver::new(FixedCodec, 1);
        // one message per chunk (17 bytes each for 1-D fixed codec)
        let mid = all.len() / 2;
        rx.consume(all.slice(0..mid)).unwrap();
        assert_eq!(rx.segments().len(), 0);
        rx.consume(all.slice(mid..)).unwrap();
        assert_eq!(rx.segments().len(), 1);
    }
}
