//! The transmitter: filter + codec + outbound byte stream.

use bytes::BytesMut;

use pla_core::filters::StreamFilter;
use pla_core::{FilterError, ProvisionalUpdate, Segment, SegmentSink};

use crate::wire::{provisional_message, segment_messages, Codec, Message};

/// Counters describing what a transmitter has sent so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransmitterStats {
    /// Samples pushed into the filter.
    pub samples_in: u64,
    /// Wire messages emitted.
    pub messages: u64,
    /// Bytes emitted.
    pub bytes: u64,
    /// Recording count (the paper's §5.1 unit: one per Hold/Start/End/
    /// Point message and one per provisional update).
    pub recordings: u64,
    /// Scalars shipped (times + values + slopes), the unit of the §5.4
    /// size analysis.
    pub scalars: u64,
}

/// Adapts a [`StreamFilter`] into a byte-emitting transmitter.
///
/// Push samples with [`push`](Self::push); encoded messages accumulate in
/// an internal buffer drained with [`take_bytes`](Self::take_bytes).
///
/// ```
/// use pla_core::filters::SlideFilter;
/// use pla_transport::wire::FixedCodec;
/// use pla_transport::{Receiver, Transmitter};
///
/// let filter = SlideFilter::new(&[0.5]).unwrap();
/// let mut tx = Transmitter::new(filter, FixedCodec);
/// let mut rx = Receiver::new(FixedCodec, 1);
/// for j in 0..100 {
///     tx.push(j as f64, &[0.1 * j as f64]).unwrap();
///     rx.consume(tx.take_bytes()).unwrap();
/// }
/// tx.finish().unwrap();
/// rx.consume(tx.take_bytes()).unwrap();
/// // A straight line costs two recordings on the wire.
/// assert_eq!(tx.stats().recordings, 2);
/// assert_eq!(rx.segments().len(), 1);
/// ```
pub struct Transmitter<F, C> {
    filter: F,
    codec: C,
    dims: usize,
    buf: BytesMut,
    stats: TransmitterStats,
}

/// Internal sink translating segments into wire messages.
struct WireSink<'a, C: Codec> {
    codec: &'a mut C,
    dims: usize,
    buf: &'a mut BytesMut,
    stats: &'a mut TransmitterStats,
    /// End point of the last emitted segment, to recognize connected
    /// starts.
    last_end: Option<(f64, Vec<f64>)>,
}

impl<C: Codec> WireSink<'_, C> {
    fn send(&mut self, msg: &Message) {
        let n = self.codec.encode(msg, self.dims, self.buf);
        self.stats.messages += 1;
        self.stats.bytes += n as u64;
        self.stats.recordings += 1;
        self.stats.scalars += msg.scalar_count() as u64;
    }
}

impl<C: Codec> SegmentSink for WireSink<'_, C> {
    fn segment(&mut self, seg: Segment) {
        // The segment→message mapping is shared with pla-net's uplink
        // (`wire::segment_messages`), so both paths produce identical
        // reconstructions.
        let mut msgs: [Option<Message>; 2] = [None, None];
        let mut n = 0;
        segment_messages(&seg, |m| {
            msgs[n] = Some(m);
            n += 1;
        });
        for m in msgs.iter().flatten() {
            self.send(m);
        }
        self.last_end = Some((seg.t_end, seg.x_end.to_vec()));
    }

    fn provisional(&mut self, update: ProvisionalUpdate) {
        self.send(&provisional_message(&update));
    }
}

impl<F: StreamFilter, C: Codec> Transmitter<F, C> {
    /// Wraps `filter` and `codec` into a transmitter.
    pub fn new(filter: F, codec: C) -> Self {
        let dims = filter.dims();
        Self { filter, codec, dims, buf: BytesMut::new(), stats: TransmitterStats::default() }
    }

    /// Pushes one sample through the filter, encoding any finalized
    /// output.
    pub fn push(&mut self, t: f64, x: &[f64]) -> Result<(), FilterError> {
        let mut sink = WireSink {
            codec: &mut self.codec,
            dims: self.dims,
            buf: &mut self.buf,
            stats: &mut self.stats,
            last_end: None,
        };
        self.filter.push(t, x, &mut sink)?;
        self.stats.samples_in += 1;
        Ok(())
    }

    /// Ends the stream, flushing all pending filter state.
    pub fn finish(&mut self) -> Result<(), FilterError> {
        let mut sink = WireSink {
            codec: &mut self.codec,
            dims: self.dims,
            buf: &mut self.buf,
            stats: &mut self.stats,
            last_end: None,
        };
        self.filter.finish(&mut sink)
    }

    /// Drains the bytes encoded since the last call.
    pub fn take_bytes(&mut self) -> bytes::Bytes {
        self.buf.split().freeze()
    }

    /// Cumulative transmission statistics.
    pub fn stats(&self) -> TransmitterStats {
        self.stats
    }

    /// Samples pushed but not yet represented in any sent message — the
    /// transmitter-side lag (paper §2.1).
    pub fn pending_points(&self) -> usize {
        self.filter.pending_points()
    }

    /// Access to the wrapped filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FixedCodec;
    use pla_core::filters::{CacheFilter, SlideFilter, SwingFilter};

    #[test]
    fn cache_run_emits_hold_messages() {
        let f = CacheFilter::new(&[0.1]).unwrap();
        let mut tx = Transmitter::new(f, FixedCodec);
        for (j, v) in [1.0, 1.0, 1.0, 5.0, 5.0].iter().enumerate() {
            tx.push(j as f64, &[*v]).unwrap();
        }
        tx.finish().unwrap();
        let stats = tx.stats();
        assert_eq!(stats.recordings, 2); // two Hold messages
        assert_eq!(stats.samples_in, 5);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn swing_connected_chain_costs_one_recording_per_segment() {
        let f = SwingFilter::new(&[0.4]).unwrap();
        let mut tx = Transmitter::new(f, FixedCodec);
        let values: Vec<f64> = (0..100).map(|i| ((i as f64) * 0.45).sin() * 4.0).collect();
        for (j, v) in values.iter().enumerate() {
            tx.push(j as f64, &[*v]).unwrap();
        }
        tx.finish().unwrap();
        let stats = tx.stats();
        // First segment: Start + End; each later connected segment: End.
        assert!(stats.recordings >= 2);
        assert!(stats.messages == stats.recordings);
    }

    #[test]
    fn bytes_accumulate_and_drain() {
        let f = SlideFilter::new(&[0.1]).unwrap();
        let mut tx = Transmitter::new(f, FixedCodec);
        for j in 0..10 {
            tx.push(j as f64, &[if j < 5 { 0.0 } else { 10.0 }]).unwrap();
        }
        let first = tx.take_bytes();
        tx.finish().unwrap();
        let rest = tx.take_bytes();
        assert_eq!(
            (first.len() + rest.len()) as u64,
            tx.stats().bytes,
            "drained bytes must equal counted bytes"
        );
        assert!(tx.take_bytes().is_empty());
    }
}
