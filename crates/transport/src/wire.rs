//! Wire protocol between transmitter and receiver.
//!
//! A segment stream maps onto five message kinds:
//!
//! | Message | Meaning | Recordings |
//! |---|---|---|
//! | `Hold(t, X)` | piece-wise constant value from `t` until superseded | 1 |
//! | `Start(t, X)` | a disconnected segment begins at `(t, X)` | 1 |
//! | `End(t, X)` | the open segment ends at `(t, X)`; a connected successor may begin here | 1 |
//! | `Point(t, X)` | degenerate single-point segment | 1 |
//! | `Provisional(anchor, slopes, through)` | lag-bound line commitment (paper §3.3) | 1 |
//! | `StreamFrame(id)` | all following messages belong to stream `id` | 0 |
//!
//! `StreamFrame` is the multi-stream extension: one connection carries
//! many logical streams by interleaving frame headers with the ordinary
//! messages. A connection that never sends a `StreamFrame` is a
//! single-stream connection, exactly as before — the header is pay-as-you-go.
//!
//! Two codecs serialize messages: [`FixedCodec`] (8-byte IEEE doubles,
//! lossless) and [`CompactCodec`] (per-dimension quantization plus
//! zig-zag varint deltas — the kind of encoding a bandwidth-starved sensor
//! deployment would actually ship; quantization error is bounded by half a
//! quantum per value and must be budgeted inside ε by the caller).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use pla_core::{ProvisionalUpdate, Segment};

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Constant value holds from `t` until the next message.
    Hold {
        /// Recording time.
        t: f64,
        /// Held value per dimension.
        x: Vec<f64>,
    },
    /// A disconnected segment starts here.
    Start {
        /// Recording time.
        t: f64,
        /// Segment start value per dimension.
        x: Vec<f64>,
    },
    /// The open segment ends here (and a connected successor may begin).
    End {
        /// Recording time.
        t: f64,
        /// Segment end value per dimension.
        x: Vec<f64>,
    },
    /// Degenerate single-point segment.
    Point {
        /// Recording time.
        t: f64,
        /// Value per dimension.
        x: Vec<f64>,
    },
    /// Lag-bound provisional line (paper §3.3).
    Provisional {
        /// Anchor time of the committed line.
        t_anchor: f64,
        /// Anchor values per dimension.
        x_anchor: Vec<f64>,
        /// Slopes per dimension.
        slopes: Vec<f64>,
        /// Newest covered sample time at commit.
        covers_through: f64,
    },
    /// Stream-id frame header: every following message (until the next
    /// `StreamFrame`) belongs to the stream with this id.
    StreamFrame {
        /// The stream id (caller-assigned, matches
        /// `pla-ingest`'s `StreamId`).
        stream: u64,
    },
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Self::Hold { .. } => 0,
            Self::Start { .. } => 1,
            Self::End { .. } => 2,
            Self::Point { .. } => 3,
            Self::Provisional { .. } => 4,
            Self::StreamFrame { .. } => 5,
        }
    }

    /// Scalar payload count (times + values) — the "recording units" a
    /// size analysis like the paper's §5.4 would assign. A frame header
    /// carries no recording payload.
    pub fn scalar_count(&self) -> usize {
        match self {
            Self::Hold { x, .. }
            | Self::Start { x, .. }
            | Self::End { x, .. }
            | Self::Point { x, .. } => 1 + x.len(),
            Self::Provisional { x_anchor, slopes, .. } => 2 + x_anchor.len() + slopes.len(),
            Self::StreamFrame { .. } => 0,
        }
    }
}

/// Maps one finalized [`Segment`] onto the wire messages that carry it —
/// the single canonical mapping, shared by the
/// [`Transmitter`](crate::Transmitter)'s sink and by `pla-net`'s
/// multiplexed uplink, so a segment shipped over either path decodes to
/// the same reconstruction:
///
/// * degenerate (`t_start == t_end`) → [`Message::Point`];
/// * piece-wise constant with one recording (a cache run) →
///   [`Message::Hold`];
/// * otherwise a [`Message::Start`] (disconnected segments only) followed
///   by a [`Message::End`].
pub fn segment_messages(seg: &Segment, mut emit: impl FnMut(Message)) {
    let degenerate = seg.t_start == seg.t_end;
    let constant = seg.x_start == seg.x_end && !seg.connected && seg.new_recordings == 1;
    if degenerate {
        emit(Message::Point { t: seg.t_start, x: seg.x_start.to_vec() });
    } else if constant {
        emit(Message::Hold { t: seg.t_start, x: seg.x_start.to_vec() });
    } else {
        if !seg.connected {
            emit(Message::Start { t: seg.t_start, x: seg.x_start.to_vec() });
        }
        emit(Message::End { t: seg.t_end, x: seg.x_end.to_vec() });
    }
}

/// Maps a [`ProvisionalUpdate`] onto its wire message.
pub fn provisional_message(update: &ProvisionalUpdate) -> Message {
    Message::Provisional {
        t_anchor: update.t_anchor,
        x_anchor: update.x_anchor.to_vec(),
        slopes: update.slopes.to_vec(),
        covers_through: update.covers_through,
    }
}

/// Errors raised while decoding a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended mid-message.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
    /// A varint ran past its maximum length.
    BadVarint,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "byte stream truncated mid-message"),
            Self::BadTag(t) => write!(f, "unknown message tag {t}"),
            Self::BadVarint => write!(f, "malformed varint"),
        }
    }
}

impl std::error::Error for WireError {}

/// A message serializer/deserializer.
pub trait Codec {
    /// Appends `msg` to `out`, returning the encoded length in bytes.
    fn encode(&mut self, msg: &Message, dims: usize, out: &mut BytesMut) -> usize;
    /// Decodes one message, advancing `buf`.
    fn decode(&mut self, buf: &mut Bytes, dims: usize) -> Result<Message, WireError>;
    /// Resets any cross-message state (delta predictors).
    fn reset(&mut self);
}

// ---------------------------------------------------------------------------

/// Lossless fixed-width codec: tag byte + 8-byte little-endian doubles.
#[derive(Debug, Clone, Default)]
pub struct FixedCodec;

impl FixedCodec {
    fn put_vec(out: &mut BytesMut, v: &[f64]) {
        for &f in v {
            out.put_f64_le(f);
        }
    }

    fn get_vec(buf: &mut Bytes, n: usize) -> Result<Vec<f64>, WireError> {
        if buf.remaining() < 8 * n {
            return Err(WireError::Truncated);
        }
        Ok((0..n).map(|_| buf.get_f64_le()).collect())
    }
}

impl Codec for FixedCodec {
    fn encode(&mut self, msg: &Message, _dims: usize, out: &mut BytesMut) -> usize {
        let before = out.len();
        out.put_u8(msg.tag());
        match msg {
            Message::Hold { t, x }
            | Message::Start { t, x }
            | Message::End { t, x }
            | Message::Point { t, x } => {
                out.put_f64_le(*t);
                Self::put_vec(out, x);
            }
            Message::Provisional { t_anchor, x_anchor, slopes, covers_through } => {
                out.put_f64_le(*t_anchor);
                Self::put_vec(out, x_anchor);
                Self::put_vec(out, slopes);
                out.put_f64_le(*covers_through);
            }
            Message::StreamFrame { stream } => {
                out.put_u64_le(*stream);
            }
        }
        out.len() - before
    }

    fn decode(&mut self, buf: &mut Bytes, dims: usize) -> Result<Message, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        let need = |n: usize, buf: &Bytes| {
            if buf.remaining() < 8 * n {
                Err(WireError::Truncated)
            } else {
                Ok(())
            }
        };
        match tag {
            0..=3 => {
                need(1 + dims, buf)?;
                let t = buf.get_f64_le();
                let x = Self::get_vec(buf, dims)?;
                Ok(match tag {
                    0 => Message::Hold { t, x },
                    1 => Message::Start { t, x },
                    2 => Message::End { t, x },
                    _ => Message::Point { t, x },
                })
            }
            4 => {
                need(2 + 2 * dims, buf)?;
                let t_anchor = buf.get_f64_le();
                let x_anchor = Self::get_vec(buf, dims)?;
                let slopes = Self::get_vec(buf, dims)?;
                let covers_through = buf.get_f64_le();
                Ok(Message::Provisional { t_anchor, x_anchor, slopes, covers_through })
            }
            5 => {
                need(1, buf)?;
                Ok(Message::StreamFrame { stream: buf.get_u64_le() })
            }
            other => Err(WireError::BadTag(other)),
        }
    }

    fn reset(&mut self) {}
}

// ---------------------------------------------------------------------------

/// Lossy compact codec: values quantized to per-dimension quanta, encoded
/// as zig-zag varint deltas against the previous message.
///
/// The time axis uses its own quantum. Quantization error is at most half
/// a quantum per scalar; callers keeping `quantum ≤ ε/8` (say) retain an
/// end-to-end guarantee of `ε + quantum/2`.
#[derive(Debug, Clone)]
pub struct CompactCodec {
    /// Quantum for the time axis.
    pub t_quantum: f64,
    /// Quantum per value dimension.
    pub x_quanta: Vec<f64>,
    prev: Vec<i64>,
}

impl CompactCodec {
    /// Creates a compact codec with the given quanta.
    ///
    /// # Panics
    ///
    /// Panics if any quantum is not finite and positive.
    pub fn new(t_quantum: f64, x_quanta: &[f64]) -> Self {
        assert!(t_quantum.is_finite() && t_quantum > 0.0, "bad time quantum");
        for &q in x_quanta {
            assert!(q.is_finite() && q > 0.0, "bad value quantum");
        }
        Self { t_quantum, x_quanta: x_quanta.to_vec(), prev: Vec::new() }
    }

    fn quantize(v: f64, q: f64) -> i64 {
        (v / q).round() as i64
    }

    fn put_varint(out: &mut BytesMut, v: i64) {
        // zig-zag then LEB128
        let mut z = ((v << 1) ^ (v >> 63)) as u64;
        loop {
            let byte = (z & 0x7f) as u8;
            z >>= 7;
            if z == 0 {
                out.put_u8(byte);
                break;
            }
            out.put_u8(byte | 0x80);
        }
    }

    fn get_varint(buf: &mut Bytes) -> Result<i64, WireError> {
        let mut z: u64 = 0;
        let mut shift = 0u32;
        loop {
            if buf.remaining() < 1 {
                return Err(WireError::Truncated);
            }
            let byte = buf.get_u8();
            z |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift >= 64 {
                return Err(WireError::BadVarint);
            }
        }
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Quantized scalars of a message, in encoding order. Frame headers
    /// carry no quantized payload (they are encoded directly as a varint
    /// id, bypassing the delta predictor).
    fn scalars(&self, msg: &Message) -> Vec<i64> {
        let qx = |x: &[f64]| -> Vec<i64> {
            x.iter().zip(self.x_quanta.iter()).map(|(&v, &q)| Self::quantize(v, q)).collect()
        };
        match msg {
            Message::Hold { t, x }
            | Message::Start { t, x }
            | Message::End { t, x }
            | Message::Point { t, x } => {
                let mut out = vec![Self::quantize(*t, self.t_quantum)];
                out.extend(qx(x));
                out
            }
            Message::Provisional { t_anchor, x_anchor, slopes, covers_through } => {
                let mut out = vec![Self::quantize(*t_anchor, self.t_quantum)];
                out.extend(qx(x_anchor));
                // Slopes use the x/t quantum ratio for consistent scale.
                out.extend(
                    slopes.iter().zip(self.x_quanta.iter()).map(|(&s, &q)| {
                        Self::quantize(s, q / self.t_quantum.max(f64::MIN_POSITIVE))
                    }),
                );
                out.push(Self::quantize(*covers_through, self.t_quantum));
                out
            }
            Message::StreamFrame { .. } => Vec::new(),
        }
    }

    fn rebuild(&self, tag: u8, scalars: &[i64], dims: usize) -> Result<Message, WireError> {
        let t = scalars[0] as f64 * self.t_quantum;
        let dx = |offset: usize| -> Vec<f64> {
            (0..dims).map(|d| scalars[offset + d] as f64 * self.x_quanta[d]).collect()
        };
        Ok(match tag {
            0 => Message::Hold { t, x: dx(1) },
            1 => Message::Start { t, x: dx(1) },
            2 => Message::End { t, x: dx(1) },
            3 => Message::Point { t, x: dx(1) },
            4 => {
                let slopes = (0..dims)
                    .map(|d| {
                        scalars[1 + dims + d] as f64
                            * (self.x_quanta[d] / self.t_quantum.max(f64::MIN_POSITIVE))
                    })
                    .collect();
                Message::Provisional {
                    t_anchor: t,
                    x_anchor: dx(1),
                    slopes,
                    covers_through: scalars[1 + 2 * dims] as f64 * self.t_quantum,
                }
            }
            other => return Err(WireError::BadTag(other)),
        })
    }
}

impl Codec for CompactCodec {
    fn encode(&mut self, msg: &Message, _dims: usize, out: &mut BytesMut) -> usize {
        let before = out.len();
        out.put_u8(msg.tag());
        // Frame headers bypass the delta predictor entirely: switching
        // streams must not perturb the value deltas of the messages around
        // the switch (the predictor state belongs to the payload stream).
        if let Message::StreamFrame { stream } = msg {
            Self::put_varint(out, *stream as i64);
            return out.len() - before;
        }
        let scalars = self.scalars(msg);
        for (i, &s) in scalars.iter().enumerate() {
            let pred = self.prev.get(i).copied().unwrap_or(0);
            Self::put_varint(out, s.wrapping_sub(pred));
        }
        self.prev = scalars;
        out.len() - before
    }

    fn decode(&mut self, buf: &mut Bytes, dims: usize) -> Result<Message, WireError> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated);
        }
        let tag = buf.get_u8();
        if tag == 5 {
            return Ok(Message::StreamFrame { stream: Self::get_varint(buf)? as u64 });
        }
        let count = match tag {
            0..=3 => 1 + dims,
            4 => 2 + 2 * dims,
            other => return Err(WireError::BadTag(other)),
        };
        let mut scalars = Vec::with_capacity(count);
        for i in 0..count {
            let pred = self.prev.get(i).copied().unwrap_or(0);
            scalars.push(pred.wrapping_add(Self::get_varint(buf)?));
        }
        let msg = self.rebuild(tag, &scalars, dims)?;
        self.prev = scalars;
        Ok(msg)
    }

    fn reset(&mut self) {
        self.prev.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::StreamFrame { stream: 42 },
            Message::Start { t: 0.0, x: vec![1.5, -2.0] },
            Message::End { t: 10.0, x: vec![2.5, -1.0] },
            Message::StreamFrame { stream: u64::MAX },
            Message::End { t: 20.0, x: vec![3.5, 0.5] },
            Message::Hold { t: 30.0, x: vec![3.5, 0.5] },
            Message::Point { t: 41.0, x: vec![9.0, 9.0] },
            Message::Provisional {
                t_anchor: 41.0,
                x_anchor: vec![9.0, 9.0],
                slopes: vec![0.5, -0.25],
                covers_through: 50.0,
            },
        ]
    }

    #[test]
    fn fixed_codec_round_trip() {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        let msgs = sample_messages();
        for m in &msgs {
            codec.encode(m, 2, &mut buf);
        }
        let mut bytes = buf.freeze();
        for m in &msgs {
            let got = codec.decode(&mut bytes, 2).unwrap();
            assert_eq!(&got, m);
        }
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn compact_codec_round_trip_within_quantum() {
        let mut enc = CompactCodec::new(0.5, &[0.01, 0.01]);
        let mut dec = enc.clone();
        let mut buf = BytesMut::new();
        let msgs = sample_messages();
        for m in &msgs {
            enc.encode(m, 2, &mut buf);
        }
        let mut bytes = buf.freeze();
        for m in &msgs {
            let got = dec.decode(&mut bytes, 2).unwrap();
            match (&got, m) {
                (Message::End { t: gt, x: gx }, Message::End { t, x })
                | (Message::Start { t: gt, x: gx }, Message::Start { t, x })
                | (Message::Hold { t: gt, x: gx }, Message::Hold { t, x })
                | (Message::Point { t: gt, x: gx }, Message::Point { t, x }) => {
                    assert!((gt - t).abs() <= 0.25 + 1e-12);
                    for (a, b) in gx.iter().zip(x.iter()) {
                        assert!((a - b).abs() <= 0.005 + 1e-12);
                    }
                }
                (
                    Message::Provisional { covers_through: g, .. },
                    Message::Provisional { covers_through: w, .. },
                ) => {
                    assert!((g - w).abs() <= 0.25 + 1e-12);
                }
                (Message::StreamFrame { stream: g }, Message::StreamFrame { stream: w }) => {
                    assert_eq!(g, w, "frame headers are lossless even in the compact codec");
                }
                _ => panic!("kind mismatch: {got:?} vs {m:?}"),
            }
        }
    }

    #[test]
    fn compact_is_smaller_than_fixed_on_smooth_streams() {
        let msgs: Vec<Message> = (0..100)
            .map(|i| Message::End { t: i as f64, x: vec![20.0 + (i % 5) as f64 * 0.01] })
            .collect();
        let mut fixed = FixedCodec;
        let mut compact = CompactCodec::new(0.001, &[0.001]);
        let mut fb = BytesMut::new();
        let mut cb = BytesMut::new();
        for m in &msgs {
            fixed.encode(m, 1, &mut fb);
            compact.encode(m, 1, &mut cb);
        }
        assert!(
            cb.len() * 3 < fb.len(),
            "compact {} should be well under fixed {}",
            cb.len(),
            fb.len()
        );
    }

    #[test]
    fn varint_extremes_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX / 2, i64::MIN / 2] {
            let mut buf = BytesMut::new();
            CompactCodec::put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(CompactCodec::get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_is_reported() {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        codec.encode(&Message::End { t: 1.0, x: vec![2.0] }, 1, &mut buf);
        let mut short = buf.freeze().slice(0..5);
        assert_eq!(codec.decode(&mut short, 1), Err(WireError::Truncated));
    }

    #[test]
    fn bad_tag_is_reported() {
        let mut codec = FixedCodec;
        let mut bytes = Bytes::from_static(&[9u8, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(codec.decode(&mut bytes, 0), Err(WireError::BadTag(9)));
    }

    #[test]
    fn scalar_count_matches_payload() {
        assert_eq!(Message::End { t: 0.0, x: vec![0.0; 3] }.scalar_count(), 4);
        assert_eq!(
            Message::Provisional {
                t_anchor: 0.0,
                x_anchor: vec![0.0; 3],
                slopes: vec![0.0; 3],
                covers_through: 0.0
            }
            .scalar_count(),
            8
        );
    }
}
