//! Adversarial property tests for [`StreamDemux`]: whatever a hostile
//! or failing transport does to the byte stream — interleaving streams
//! in any order, replaying frames after reconnects, truncating the tail
//! — the demultiplexer must either reconstruct per-stream segment logs
//! *identical* to single-stream reconstruction, or fail with a typed
//! error. It must never panic and never silently corrupt a log.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;

use pla_transport::wire::{Codec, FixedCodec, Message};
use pla_transport::{ReceiveError, Receiver, SeqOutcome, StreamDemux};

/// Ops that always yield a protocol-valid per-stream message sequence,
/// whatever order they're drawn in. Times are assigned while lowering.
#[derive(Debug, Clone, Copy)]
enum Op {
    Hold(f64),
    Point(f64),
    /// `Start`+`End` pair (a disconnected segment).
    Segment(f64, f64),
    /// A connected `End` if a segment chain is open, else a fresh pair.
    Extend(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let v = -100.0f64..100.0;
    prop_oneof![
        v.clone().prop_map(Op::Hold),
        v.clone().prop_map(Op::Point),
        (v.clone(), v.clone()).prop_map(|(a, b)| Op::Segment(a, b)),
        v.prop_map(Op::Extend),
    ]
}

/// Lowers ops to messages with strictly increasing times and the
/// Start/End discipline a real transmitter obeys.
fn lower(ops: &[Op]) -> Vec<Message> {
    let mut out = Vec::new();
    let mut t = 0.0;
    let mut chain_open = false;
    let mut next_t = || {
        t += 1.0;
        t
    };
    for &op in ops {
        match op {
            Op::Hold(v) => {
                out.push(Message::Hold { t: next_t(), x: vec![v] });
                chain_open = false;
            }
            Op::Point(v) => {
                out.push(Message::Point { t: next_t(), x: vec![v] });
                chain_open = false;
            }
            Op::Segment(a, b) => {
                out.push(Message::Start { t: next_t(), x: vec![a] });
                out.push(Message::End { t: next_t(), x: vec![b] });
                chain_open = true;
            }
            Op::Extend(v) => {
                if !chain_open {
                    out.push(Message::Start { t: next_t(), x: vec![v - 1.0] });
                }
                out.push(Message::End { t: next_t(), x: vec![v] });
                chain_open = true;
            }
        }
    }
    out
}

/// 2–4 streams, each with its own valid message sequence.
fn streams_strategy() -> impl Strategy<Value = Vec<Vec<Message>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 1..12), 2..5)
        .prop_map(|streams| streams.iter().map(|ops| lower(ops)).collect())
}

/// The single-stream reference: what a dedicated `Receiver` makes of
/// one stream's messages alone.
fn single_stream_reference(msgs: &[Message]) -> Vec<pla_core::Segment> {
    let mut codec = FixedCodec;
    let mut buf = BytesMut::new();
    for m in msgs {
        codec.encode(m, 1, &mut buf);
    }
    let mut rx = Receiver::new(FixedCodec, 1);
    rx.consume(buf.freeze()).expect("valid single-stream sequence");
    rx.into_segments()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of the streams onto one connection — chosen by
    /// an arbitrary schedule, switching headers at every turn —
    /// reconstructs each stream's log exactly as a dedicated
    /// single-stream receiver would.
    #[test]
    fn arbitrary_interleavings_match_single_stream_reconstruction(
        streams in streams_strategy(),
        schedule in prop::collection::vec(0usize..16, 1..160),
    ) {
        let mut cursors = vec![0usize; streams.len()];
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        let mut schedule = schedule.into_iter().cycle();
        // Drain every stream according to the schedule.
        while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
            let pick = schedule.next().expect("cycled") % streams.len();
            let (pick, cursor) = if cursors[pick] < streams[pick].len() {
                (pick, &mut cursors[pick])
            } else {
                // This stream is spent; take the first live one.
                let alive = cursors.iter().zip(&streams).position(|(&c, s)| c < s.len())
                    .expect("loop condition");
                (alive, &mut cursors[alive])
            };
            codec.encode(&Message::StreamFrame { stream: pick as u64 }, 1, &mut buf);
            codec.encode(&streams[pick][*cursor], 1, &mut buf);
            *cursor += 1;
        }
        let mut demux = StreamDemux::new(FixedCodec, 1);
        demux.consume(buf.freeze()).expect("valid interleaving");
        let logs = demux.into_segment_logs();
        for (id, msgs) in streams.iter().enumerate() {
            let want = single_stream_reference(msgs);
            prop_assert_eq!(
                logs.get(&(id as u64)).cloned().unwrap_or_default(),
                want,
                "stream {} diverged from single-stream reconstruction",
                id
            );
        }
    }

    /// Sequenced frames with arbitrary replays of already-delivered
    /// frames (what reconnect storms produce): duplicates are dropped,
    /// logs stay byte-identical to single-stream reconstruction.
    #[test]
    fn duplicated_frames_never_corrupt_the_logs(
        streams in streams_strategy(),
        chop in prop::collection::vec(1usize..4, 1..40),
        replays in prop::collection::vec((0usize..8, 0usize..8), 0..24),
    ) {
        // Chop each stream's messages into sequenced frames.
        let mut frames: Vec<(u64, u64, Bytes)> = Vec::new(); // (stream, seq, bytes)
        for (id, msgs) in streams.iter().enumerate() {
            let mut chop = chop.iter().cycle();
            let mut seq = 0u64;
            let mut i = 0;
            while i < msgs.len() {
                let take = (*chop.next().expect("cycled")).min(msgs.len() - i);
                let mut codec = FixedCodec;
                let mut buf = BytesMut::new();
                codec.encode(&Message::StreamFrame { stream: id as u64 }, 1, &mut buf);
                for m in &msgs[i..i + take] {
                    codec.encode(m, 1, &mut buf);
                }
                seq += 1;
                frames.push((id as u64, seq, buf.freeze()));
                i += take;
            }
        }
        // Deliver in order, splicing in replays of frames already
        // delivered (per stream, a replay re-sends a frame at or before
        // the current delivery point — what a reconnecting sender does).
        let mut demux = StreamDemux::new(FixedCodec, 1);
        let mut delivered: Vec<usize> = Vec::new();
        let mut replays = replays.into_iter();
        for (idx, (stream, seq, bytes)) in frames.iter().enumerate() {
            let outcome = demux.consume_sequenced(*stream, *seq, bytes.clone())
                .expect("in-order frame");
            prop_assert_eq!(outcome, SeqOutcome::Applied);
            delivered.push(idx);
            if let Some((a, b)) = replays.next() {
                for pick in [a, b] {
                    let replay_idx = delivered[pick % delivered.len()];
                    let (rs, rq, rb) = &frames[replay_idx];
                    let outcome = demux
                        .consume_sequenced(*rs, *rq, rb.clone())
                        .expect("replay of a delivered frame");
                    prop_assert_eq!(outcome, SeqOutcome::Duplicate);
                }
            }
        }
        let logs = demux.into_segment_logs();
        for (id, msgs) in streams.iter().enumerate() {
            let want = single_stream_reference(msgs);
            prop_assert_eq!(
                logs.get(&(id as u64)).cloned().unwrap_or_default(),
                want,
                "stream {} corrupted by replayed frames",
                id
            );
        }
    }

    /// A frame from the future (sequence gap) is a typed error and does
    /// not count as applied.
    #[test]
    fn sequence_gaps_are_typed_errors(
        msgs in prop::collection::vec(op_strategy(), 1..8).prop_map(|ops| lower(&ops)),
        gap in 2u64..100,
    ) {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        codec.encode(&Message::StreamFrame { stream: 1 }, 1, &mut buf);
        for m in &msgs {
            codec.encode(m, 1, &mut buf);
        }
        let mut demux = StreamDemux::new(FixedCodec, 1);
        let got = demux.consume_sequenced(1, gap, buf.freeze());
        prop_assert_eq!(got, Err(ReceiveError::SequenceGap { stream: 1, expected: 1, got: gap }));
        prop_assert_eq!(demux.ack_point(1), 0, "a gapped frame must not be applied");
    }

    /// Truncating the connection at any byte yields a typed error (or a
    /// clean prefix), never a panic — and the messages decoded before
    /// the cut still demux into valid per-stream state.
    #[test]
    fn truncated_tail_bytes_never_panic(
        streams in streams_strategy(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        for (id, msgs) in streams.iter().enumerate() {
            codec.encode(&Message::StreamFrame { stream: id as u64 }, 1, &mut buf);
            for m in msgs {
                codec.encode(m, 1, &mut buf);
            }
        }
        let full = buf.freeze();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        let mut demux = StreamDemux::new(FixedCodec, 1);
        match demux.consume(full.slice(0..cut)) {
            Ok(()) => {} // the cut landed on a message boundary
            Err(ReceiveError::Wire(_)) => {} // mid-message cut, typed
            Err(other) => prop_assert!(false, "unexpected error class: {}", other),
        }
        // Whatever survived the cut is still a consistent prefix: no
        // stream has more segments than the uncut run produces.
        let uncut = {
            let mut d = StreamDemux::new(FixedCodec, 1);
            d.consume(full).expect("valid full stream");
            d.into_segment_logs()
        };
        for (stream, log) in demux.into_segment_logs() {
            let max = uncut.get(&stream).map_or(0, |l| l.len());
            prop_assert!(
                log.len() <= max,
                "stream {} invented segments after truncation",
                stream
            );
        }
    }
}
