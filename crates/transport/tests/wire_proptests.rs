//! Property tests for the wire codecs (P3 of DESIGN.md §6).

use bytes::BytesMut;
use proptest::prelude::*;

use pla_transport::wire::{Codec, CompactCodec, FixedCodec, Message};

fn message_strategy(dims: usize) -> impl Strategy<Value = Message> {
    let vals = prop::collection::vec(-1e6f64..1e6, dims..=dims);
    let t = -1e6f64..1e6;
    prop_oneof![
        (t.clone(), vals.clone()).prop_map(|(t, x)| Message::Hold { t, x }),
        (t.clone(), vals.clone()).prop_map(|(t, x)| Message::Start { t, x }),
        (t.clone(), vals.clone()).prop_map(|(t, x)| Message::End { t, x }),
        (t.clone(), vals.clone()).prop_map(|(t, x)| Message::Point { t, x }),
        (t.clone(), vals.clone(), prop::collection::vec(-1e3f64..1e3, dims..=dims), t.clone())
            .prop_map(|(t_anchor, x_anchor, slopes, covers_through)| Message::Provisional {
                t_anchor,
                x_anchor,
                slopes,
                covers_through,
            }),
    ]
}

fn stream_strategy() -> impl Strategy<Value = (usize, Vec<Message>)> {
    (1usize..=4).prop_flat_map(|d| {
        prop::collection::vec(message_strategy(d), 1..40).prop_map(move |msgs| (d, msgs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fixed codec: exact round trip of arbitrary message streams.
    #[test]
    fn fixed_codec_round_trips_exactly((dims, msgs) in stream_strategy()) {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        for m in &msgs {
            codec.encode(m, dims, &mut buf);
        }
        let mut bytes = buf.freeze();
        for m in &msgs {
            let got = codec.decode(&mut bytes, dims).unwrap();
            prop_assert_eq!(&got, m);
        }
        prop_assert!(bytes.is_empty());
    }

    /// Compact codec: round trip within half a quantum per scalar, and
    /// the same message kind.
    #[test]
    fn compact_codec_round_trips_within_quantum(
        (dims, msgs) in stream_strategy(),
        tq in 0.001f64..1.0,
        xq in 0.001f64..1.0,
    ) {
        let quanta = vec![xq; dims];
        let mut enc = CompactCodec::new(tq, &quanta);
        let mut dec = CompactCodec::new(tq, &quanta);
        let mut buf = BytesMut::new();
        for m in &msgs {
            enc.encode(m, dims, &mut buf);
        }
        let mut bytes = buf.freeze();
        for m in &msgs {
            let got = dec.decode(&mut bytes, dims).unwrap();
            prop_assert_eq!(std::mem::discriminant(&got), std::mem::discriminant(m));
            match (&got, m) {
                (
                    Message::Hold { t: gt, x: gx } | Message::Start { t: gt, x: gx }
                    | Message::End { t: gt, x: gx } | Message::Point { t: gt, x: gx },
                    Message::Hold { t, x } | Message::Start { t, x }
                    | Message::End { t, x } | Message::Point { t, x },
                ) => {
                    prop_assert!((gt - t).abs() <= tq / 2.0 + 1e-9);
                    for (a, b) in gx.iter().zip(x.iter()) {
                        prop_assert!((a - b).abs() <= xq / 2.0 + 1e-9);
                    }
                }
                (
                    Message::Provisional { t_anchor: gt, x_anchor: gx, .. },
                    Message::Provisional { t_anchor: t, x_anchor: x, .. },
                ) => {
                    prop_assert!((gt - t).abs() <= tq / 2.0 + 1e-9);
                    for (a, b) in gx.iter().zip(x.iter()) {
                        prop_assert!((a - b).abs() <= xq / 2.0 + 1e-9);
                    }
                }
                _ => prop_assert!(false, "kind mismatch"),
            }
        }
        prop_assert!(bytes.is_empty());
    }

    /// Truncating an encoded stream anywhere inside a message must yield
    /// `Truncated`, never a panic or a bogus message.
    #[test]
    fn truncation_is_detected((dims, msgs) in stream_strategy(), cut_frac in 0.0f64..1.0) {
        let mut codec = FixedCodec;
        let mut buf = BytesMut::new();
        // Encode exactly one message and cut inside it.
        let m = &msgs[0];
        codec.encode(m, dims, &mut buf);
        let full = buf.freeze();
        let cut = 1 + ((full.len() - 2) as f64 * cut_frac) as usize; // ∈ [1, len−1]
        let mut sliced = full.slice(0..cut);
        let result = codec.decode(&mut sliced, dims);
        prop_assert!(result.is_err());
    }
}
