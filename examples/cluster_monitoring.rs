//! Cluster-monitoring scenario: archiving host metrics with precision
//! guarantees and replaying them for offline analysis.
//!
//! ```text
//! cargo run --release --example cluster_monitoring
//! ```
//!
//! The paper's other motivating deployment (§1, and the authors' earlier
//! work on cluster monitoring): a monitored host reports CPU, memory and
//! request-counter metrics to a repository. Counters are staircase-like,
//! utilization oscillates — different shapes favour different filters,
//! which is why the repository lets the filter choice vary per metric.
//! The example compresses each metric with the best filter, stores the
//! segments as CSV, loads them back, and replays the reconstruction on
//! the original sampling grid.

use pla::core::filters::{run_filter, CacheFilter, SlideFilter, StreamFilter};
use pla::core::{metrics, GapPolicy, Polyline, Signal};
use pla::signal::waveforms;

fn main() {
    let n = 4_000;
    // CPU utilization: oscillating with plateaus.
    let cpu = {
        let mut s = Signal::new(1);
        for j in 0..n {
            let t = j as f64;
            let base = 40.0 + 25.0 * (t * 0.013).sin() + 10.0 * (t * 0.0031).cos();
            let spike = if j % 701 < 12 { 30.0 } else { 0.0 };
            s.push(t, &[(base + spike).clamp(0.0, 100.0)]).expect("monotone time");
        }
        s
    };
    // Request counter: a staircase that advances in bursts.
    let requests = waveforms::staircase(n, 17.0, 37);

    println!("metric        filter   recordings  compression  max err");
    for (name, signal, eps) in [("cpu%", &cpu, 1.0), ("requests", &requests, 5.0)] {
        // Pick the filter the shape favours: slide for oscillation, cache
        // for staircases — then verify the choice empirically.
        let mut slide: Box<dyn StreamFilter> = Box::new(SlideFilter::new(&[eps]).expect("ε"));
        let mut cache: Box<dyn StreamFilter> = Box::new(CacheFilter::new(&[eps]).expect("ε"));
        let slide_report = metrics::evaluate(slide.as_mut(), signal).expect("valid");
        let cache_report = metrics::evaluate(cache.as_mut(), signal).expect("valid");
        let (choice, report): (Box<dyn StreamFilter>, _) =
            if slide_report.compression_ratio >= cache_report.compression_ratio {
                (Box::new(SlideFilter::new(&[eps]).expect("ε")), slide_report)
            } else {
                (Box::new(CacheFilter::new(&[eps]).expect("ε")), cache_report)
            };
        println!(
            "{name:<12}  {:<7}  {:>10}  {:>11.1}  {:>7.3}",
            choice.name(),
            report.n_recordings,
            report.compression_ratio,
            report.error.max_abs_overall()
        );

        // Archive → replay round trip through the reconstruction API.
        let mut filter = choice;
        let segments = run_filter(filter.as_mut(), signal).expect("valid");
        let polyline = Polyline::new(segments);
        let replay =
            polyline.resample(signal.times(), GapPolicy::Strict).expect("every sample covered");
        assert_eq!(replay.len(), signal.len());
        for j in 0..signal.len() {
            assert!(
                (replay.value(j, 0) - signal.value(j, 0)).abs() <= eps * (1.0 + 1e-9),
                "{name}: replay broke the guarantee at sample {j}"
            );
        }
    }
    println!("\nreplay verified: every archived sample within ε of the original");
}
