//! Many-connection collector: a fleet of edge senders, each on its own
//! TCP connection, fanning into one shared `SegmentStore`.
//!
//! ```text
//! cargo run --release --example collector_fanin
//! ```
//!
//! This is the paper's deployment picture end-to-end: every sensor
//! compresses its stream at the edge (here, a `SwingFilter` per
//! stream), multiplexes its streams' segments over one socket, and the
//! base station's `Collector` reconstructs all of them — one
//! `NetReceiver` per accepted connection, every segment published as
//! `(ConnId, StreamId, Segment)` into one queryable store. On Linux the
//! runtime's epoll reactor parks each connection task on its socket, so
//! idle connections cost nothing.
//!
//! (For the reconnect/replay choreography on a single connection, see
//! `examples/net_pipeline.rs`.)

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use pla::core::filters::{run_filter, FilterKind};
use pla::ingest::SegmentStore;
use pla::net::driver::pump_sender;
use pla::net::listen::TcpAcceptor;
use pla::net::{collector, runtime, Collector, MuxSender, NetConfig, TcpLink};
use pla::signal::{random_walk, WalkParams};
use pla::transport::wire::FixedCodec;

const SENSORS: u64 = 6; // connections
const STREAMS_PER_SENSOR: u64 = 8;
const SAMPLES: usize = 2_000;
const EPSILON: f64 = 0.4;

fn main() {
    let cfg = NetConfig::default();
    let acceptor = match TcpAcceptor::bind("127.0.0.1:0") {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot bind loopback ({e}); this example needs TCP networking");
            return;
        }
    };
    let addr = acceptor.local_addr().expect("bound address");
    let store = Arc::new(SegmentStore::new());
    let collector =
        Rc::new(RefCell::new(Collector::new(FixedCodec, 1, cfg, acceptor, store.clone())));

    // --- edge fleet: one thread per sensor node ------------------------
    let mut expected = 0u64;
    let mut workers = Vec::new();
    for sensor in 0..SENSORS {
        // Compress this sensor's streams up front so the example's
        // timing shows transport, not filtering.
        let mut logs = Vec::new();
        for s in 0..STREAMS_PER_SENSOR {
            let id = sensor * STREAMS_PER_SENSOR + s;
            let signal = random_walk(WalkParams {
                n: SAMPLES,
                p_decrease: 0.5,
                max_delta: 0.8,
                seed: 0xFA7 ^ id,
            });
            let mut filter = FilterKind::Swing.build(&[EPSILON]).expect("valid eps");
            let segments = run_filter(filter.as_mut(), &signal).expect("valid signal");
            expected += segments.len() as u64;
            logs.push((id, segments));
        }
        workers.push(std::thread::spawn(move || {
            let mut link = TcpLink::connect(addr).expect("dial collector");
            let mut tx = MuxSender::new(FixedCodec, 1, cfg);
            let mut cursors = vec![0usize; logs.len()];
            loop {
                let mut done = true;
                for (i, (id, segments)) in logs.iter().enumerate() {
                    while cursors[i] < segments.len() {
                        match tx.try_send_segment(*id, &segments[cursors[i]]) {
                            Ok(()) => cursors[i] += 1,
                            Err(pla::net::NetError::Backpressure) => break,
                            Err(e) => panic!("send failed: {e}"),
                        }
                    }
                    if cursors[i] < segments.len() {
                        done = false;
                    }
                }
                if done {
                    tx.finish_all();
                }
                pump_sender(&mut tx, &mut link).expect("uplink");
                if done && tx.is_idle() {
                    return;
                }
                std::thread::yield_now();
            }
        }));
    }

    // --- base station: the collector on the async runtime --------------
    let start = std::time::Instant::now();
    let reactor = runtime::block_on({
        let collector = collector.clone();
        async move {
            let kind = runtime::active_reactor();
            collector::drive_collector(collector, |c| c.stats().segments >= expected)
                .await
                .expect("collector");
            kind
        }
    });
    let elapsed = start.elapsed();
    for w in workers {
        w.join().expect("sensor thread");
    }

    // --- what landed ----------------------------------------------------
    let stats = collector.borrow().stats();
    let snap = store.snapshot();
    println!("reactor: {reactor:?}");
    println!(
        "{} connections, {} streams, {} segments collected in {:.1} ms",
        stats.connections,
        snap.streams.len(),
        snap.total_segments,
        elapsed.as_secs_f64() * 1e3
    );
    for conn in &stats.conns {
        let mark = store.watermark(conn.conn.0).expect("watermark");
        println!(
            "  {}: {} frames, {} segments, covered through t={:.0}, {} bytes moved",
            conn.conn,
            conn.receiver.frames_applied,
            conn.published,
            mark.covered_through,
            conn.bytes_moved
        );
    }
    assert_eq!(snap.total_segments, expected);
    assert_eq!(snap.streams.len(), (SENSORS * STREAMS_PER_SENSOR) as usize);
    // Every stream's log reconstructs within the ε guarantee — spot-check
    // the segment count per stream is sane.
    for (id, log) in &snap.streams {
        assert!(!log.is_empty(), "{id} lost its log");
    }
    println!("store snapshot verified: every stream's log present, ε-guaranteed at the edge");
}
