//! Multiplexed fleet uplink: many sensors → one shard-per-core ingest
//! engine → one framed, credit-controlled connection → per-stream
//! reconstruction — surviving a mid-stream disconnect.
//!
//! ```text
//! cargo run --release --example net_pipeline
//! ```
//!
//! The paper's transmitter/receiver pipeline assumes one reliable link
//! per stream; a collector serving a fleet multiplexes thousands of
//! streams over few connections. This example runs the whole
//! production-shaped path on `pla-net`'s vendored-style async runtime:
//!
//! 1. 32 sensor streams feed an `IngestEngine` (filtering happens
//!    shard-per-core); the engine's live segment tap feeds an uplink;
//! 2. the uplink multiplexes segments into sequenced, credit-limited
//!    frames over an in-memory link (swap in `TcpLink` for a socket);
//! 3. halfway through, the connection is severed — bytes in flight are
//!    lost — and the session reconnects: the sender replays its
//!    unacknowledged frames, the receiver drops duplicates by sequence
//!    number;
//! 4. the receiver's `StreamDemux` rebuilds every stream's segment log,
//!    which is verified against the ε guarantee.

use std::cell::RefCell;
use std::rc::Rc;

use pla::core::filters::{FilterKind, FilterSpec};
use pla::ingest::{IngestConfig, IngestEngine, StreamId};
use pla::net::driver::{pump_receiver, pump_sender, DriveError};
use pla::net::uplink::{EngineUplink, UplinkStatus};
use pla::net::{runtime, MemoryLink, MuxSender, NetConfig, NetReceiver};
use pla::signal::{random_walk, WalkParams};
use pla::transport::wire::FixedCodec;

const STREAMS: u64 = 32;
const SAMPLES: usize = 2_000;
const EPSILON: f64 = 0.4;

fn main() {
    // --- 1. fleet ingest -------------------------------------------------
    let (engine, tap) = IngestEngine::with_segment_tap(IngestConfig {
        shards: 4,
        queue_depth: 256,
        shard_log: false,
    });
    let handle = engine.handle();
    let mut signals = Vec::new();
    for id in 0..STREAMS {
        handle
            .register(StreamId(id), FilterSpec::new(FilterKind::Slide, &[EPSILON]))
            .expect("register stream");
        signals.push(random_walk(WalkParams {
            n: SAMPLES,
            p_decrease: 0.5,
            max_delta: 0.8,
            seed: 0xF1EE7 ^ id,
        }));
    }
    for (id, signal) in signals.iter().enumerate() {
        let samples: Vec<(f64, &[f64])> = signal.iter().collect();
        handle.push_batch(StreamId(id as u64), &samples).expect("feed");
    }
    let report = engine.finish();
    let total_segments = report.total_segments();
    println!(
        "ingest: {} streams, {} samples -> {} segments ({} shards)",
        report.streams.len(),
        report.total_samples(),
        total_segments,
        report.shards.len()
    );

    // --- 2.+3. one multiplexed connection, with a forced reconnect -------
    let cfg = NetConfig { window: 4 * 1024, max_frame: 1 << 20 };
    let tx = Rc::new(RefCell::new(MuxSender::new(FixedCodec, 1, cfg)));
    let rx = Rc::new(RefCell::new(NetReceiver::new(FixedCodec, 1, cfg)));
    let (la, lb) = MemoryLink::pair(1024);
    let link_a = Rc::new(RefCell::new(la));
    let link_b = Rc::new(RefCell::new(lb));
    let reconnects = Rc::new(RefCell::new(0u32));

    runtime::block_on({
        let (tx, rx) = (tx.clone(), rx.clone());
        let reconnects = reconnects.clone();
        async move {
            let mut uplink = EngineUplink::new(tap);
            let mut finned = false;
            loop {
                // Feed the sender from the engine tap (credit-limited).
                let status = uplink.pump(&mut tx.borrow_mut()).expect("uplink");
                if status == UplinkStatus::Drained && !finned {
                    tx.borrow_mut().finish_all();
                    finned = true;
                }

                // Sever the link once, mid-transfer.
                let applied = rx.borrow().demux().messages();
                if *reconnects.borrow() == 0 && applied >= total_segments as u64 / 2 {
                    link_a.borrow().sever();
                    println!(
                        "!! connection severed after {applied} messages; \
                         in-flight bytes lost"
                    );
                }

                // Pump both ends; a dead link triggers the reconnect path.
                let pumped = {
                    let a = pump_sender(&mut tx.borrow_mut(), &mut *link_a.borrow_mut());
                    let b = pump_receiver(&mut rx.borrow_mut(), &mut *link_b.borrow_mut());
                    match (a, b) {
                        (Ok(na), Ok(nb)) => Some(na + nb),
                        (Err(DriveError::Io(_)), _) | (_, Err(DriveError::Io(_))) => None,
                        (Err(e), _) | (_, Err(e)) => panic!("protocol error: {e}"),
                    }
                };
                match pumped {
                    None => {
                        // Reconnect: fresh link, replay unacked, resync.
                        let (na, nb) = MemoryLink::pair(1024);
                        *link_a.borrow_mut() = na;
                        *link_b.borrow_mut() = nb;
                        tx.borrow_mut().on_reconnect();
                        rx.borrow_mut().on_reconnect();
                        *reconnects.borrow_mut() += 1;
                        println!(
                            "-> reconnected; sender replays unacknowledged frames, \
                             receiver dedups by sequence number"
                        );
                    }
                    Some(0) => runtime::reactor_tick().await,
                    Some(_) => runtime::yield_now().await,
                }

                let done = finned
                    && tx.borrow().is_idle()
                    && rx.borrow().finished_streams().count() as u64 == STREAMS
                    && rx.borrow().staged_bytes() == 0;
                if done {
                    break;
                }
            }
        }
    });

    // --- 4. verify the reconstruction ------------------------------------
    assert_eq!(*reconnects.borrow(), 1, "the disconnect should have happened once");
    let rx = Rc::try_unwrap(rx).ok().expect("session done").into_inner();
    let logs = rx.into_demux().into_segment_logs();
    assert_eq!(logs.len(), STREAMS as usize);
    let mut recovered = 0usize;
    let mut worst = 0.0f64;
    for (id, signal) in signals.iter().enumerate() {
        let log = &logs[&(id as u64)];
        recovered += log.len();
        for (t, x) in signal.iter() {
            if let Some(seg) = log.iter().find(|s| s.covers(t)) {
                worst = worst.max((seg.eval(t, 0) - x[0]).abs());
            }
        }
    }
    assert_eq!(recovered, total_segments, "every segment arrived exactly once");
    println!(
        "reconstructed {recovered} segments across {STREAMS} streams \
         after 1 reconnect; worst in-segment error {worst:.4} <= ε = {EPSILON}"
    );
    assert!(worst <= EPSILON * (1.0 + 1e-6));
}
