//! The operations tier end-to-end: boot a collector + store + query
//! stack from one config file, run real edge traffic through it, and
//! operate it entirely over the HTTP surface — metrics scrape, admin
//! JSON, quarantine/release.
//!
//! ```text
//! cargo run --release --example ops_server
//! ```
//!
//! Everything runs deterministically over in-memory transports (the
//! same `Acceptor`/`Link` seam the TCP forms use), so the example needs
//! no sockets: the "HTTP client" below is a `MemoryLink` speaking real
//! HTTP/1.1 to the `OpsServer`. Config comes from an embedded file plus
//! whatever `PLA_*` variables are in the process environment — try
//! `PLA_COLLECTOR_WINDOW=64 cargo run --example ops_server` (or a typo
//! like `PLA_COLLECTOR_WINDW=64` to see a config error fail the boot).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pla::core::filters::{FilterKind, FilterSpec};
use pla::ingest::{IngestEngine, SegmentStore, ShardStats, StreamId};
use pla::net::listen::MemoryAcceptor;
use pla::net::uplink::{EngineUplink, UplinkStatus};
use pla::net::{Collector, MemoryLink, MemoryRedial, SessionSender};
use pla::ops::collect::{ingest_shard_families, query_families, session_families};
use pla::ops::{AppConfig, CollectorAdmin, MetricFamily, OpsServer};
use pla::query::{LookupStats, StoreQueryEngine};
use pla::signal::{random_walk, WalkParams};
use pla::transport::wire::FixedCodec;

const CONNS: u64 = 2;
const STREAMS_PER_CONN: u64 = 4;
const SAMPLES: usize = 800;
const TICK: Duration = Duration::from_millis(5);

/// The one file the whole stack boots from.
const CONFIG: &str = r#"
# Operations endpoint.
[ops]
enabled = true
listen = "127.0.0.1:9100"   # used by the TCP form; the example stays in-memory
max_request = 16384

# Wire + session settings for the collector.
[collector]
dims = 1
window = 512
sessions = true
heartbeat_ms = 50
liveness_ms = 2000
handshake_ms = 500

# Segment store sharding.
[store]
shards = 4

# Edge-side ingest engines.
[ingest]
shards = 2
queue_depth = 128
"#;

type Admin = CollectorAdmin<FixedCodec, MemoryAcceptor>;
type Server = OpsServer<MemoryAcceptor, Admin>;

/// One scripted HTTP request over the in-memory link, pumping the
/// server until the `Content-Length` body is complete.
fn fetch(server: &mut Server, client: &mut MemoryLink, method: &str, path: &str) -> (u16, String) {
    use pla::net::Link;
    let req = format!("{method} {path} HTTP/1.1\r\nHost: ops\r\n\r\n");
    client.try_write(req.as_bytes()).expect("request fits the pipe");
    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        server.pump();
        match client.try_read(&mut chunk) {
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("response read failed: {e}"),
        }
        let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4) else {
            continue;
        };
        let head = std::str::from_utf8(&raw[..head_end]).expect("utf8 head");
        let len: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(String::from))
            .expect("content-length header")
            .trim()
            .parse()
            .expect("numeric content-length");
        if raw.len() >= head_end + len {
            let status: u16 =
                head.split(' ').nth(1).expect("status").parse().expect("numeric status");
            let body = String::from_utf8(raw[head_end..head_end + len].to_vec()).expect("utf8");
            return (status, body);
        }
    }
}

fn main() {
    // --- boot from config ----------------------------------------------
    let cfg = match AppConfig::load_str(CONFIG, std::env::vars()) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("config error: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "booting from config: window={} store_shards={}",
        cfg.collector.window, cfg.store.shards
    );

    let store = Arc::new(SegmentStore::with_config(cfg.store));
    let acceptor = MemoryAcceptor::new();
    let connector = acceptor.connector();
    let collector = Rc::new(RefCell::new(Collector::with_sessions(
        FixedCodec,
        cfg.collector.dims,
        cfg.collector.net_config(),
        cfg.collector.session_config(),
        acceptor,
        store.clone(),
    )));

    assert!(cfg.ops.enabled, "this example is the ops endpoint");
    let ops_acceptor = MemoryAcceptor::new();
    let ops_connector = ops_acceptor.connector();
    let mut server = OpsServer::new(ops_acceptor, Admin::new(collector.clone()))
        .with_max_request(cfg.ops.max_request);
    let mut client = ops_connector.connect(1 << 20);

    // --- edge fleet: ingest engines feeding session senders -------------
    let epoch = Instant::now();
    let mut edges = Vec::new();
    let mut shard_totals = vec![ShardStats::default(); cfg.ingest.shards];
    for conn in 0..CONNS {
        let (engine, tap) = IngestEngine::with_segment_tap(cfg.ingest);
        let handle = engine.handle();
        for s in 0..STREAMS_PER_CONN {
            let id = conn * STREAMS_PER_CONN + s;
            let kind = if id.is_multiple_of(2) { FilterKind::Swing } else { FilterKind::Slide };
            handle.register(StreamId(id), FilterSpec::new(kind, &[0.5])).expect("register");
            let signal = random_walk(WalkParams {
                n: SAMPLES,
                p_decrease: 0.5,
                max_delta: 1.5,
                seed: 0x0B5 ^ id,
            });
            let samples: Vec<(f64, &[f64])> = signal.iter().collect();
            handle.push_batch(StreamId(id), &samples).expect("feed");
        }
        let report = engine.finish();
        for (total, s) in shard_totals.iter_mut().zip(&report.shards) {
            total.ops += s.ops;
            total.samples += s.samples;
            total.segments += s.segments;
            total.streams += s.streams;
        }
        let sess = SessionSender::new(
            FixedCodec,
            cfg.collector.dims,
            cfg.collector.net_config(),
            cfg.collector.session_config(),
            MemoryRedial::new(connector.clone(), 64 * 1024),
            epoch,
        );
        edges.push((sess, EngineUplink::new(tap), false));
    }

    // --- quarantine one stream over the admin API before traffic -------
    let victim = 5u64;
    let (status, body) =
        fetch(&mut server, &mut client, "POST", &format!("/admin/quarantine/{victim}"));
    println!("POST /admin/quarantine/{victim} -> {status} {body}");

    // --- run the fan-in, serving HTTP alongside -------------------------
    let mut now = epoch;
    let mut rounds = 0u32;
    loop {
        now += TICK;
        collector.borrow_mut().pump_at(now).expect("fault-free run");
        for (sess, uplink, finned) in &mut edges {
            if uplink.pump(sess.mux_mut()).expect("uplink") == UplinkStatus::Drained && !*finned {
                sess.mux_mut().finish_all();
                *finned = true;
            }
            sess.pump_at(now);
        }
        server.pump();
        if edges.iter().all(|(sess, _, finned)| *finned && sess.mux().is_idle()) {
            break;
        }
        rounds += 1;
        assert!(rounds < 100_000, "fan-in did not converge");
    }

    // --- register the remaining scrape sources --------------------------
    let sessions: Vec<_> = edges.iter().map(|(sess, _, _)| sess.stats()).collect();
    server.handler_mut().add_source(move |out: &mut Vec<MetricFamily>| {
        ingest_shard_families(&shard_totals, 0, out);
        for (i, s) in sessions.iter().enumerate() {
            session_families(&i.to_string(), s, out);
        }
    });
    let engine = StoreQueryEngine::new(store.snapshot());
    let mut lookups = 0u64;
    let mut stats = LookupStats::default();
    for id in engine.streams() {
        if let Some((lo, hi)) = engine.stream(id).and_then(|v| v.span()) {
            let (_, st) = engine.point_with_stats(id, (lo + hi) / 2.0, 0).expect("covered");
            lookups += 1;
            stats.comparisons += st.comparisons;
        }
    }
    server.handler_mut().add_source(move |out: &mut Vec<MetricFamily>| {
        query_families(lookups, &stats, out);
    });

    // --- operate it over HTTP -------------------------------------------
    let (status, body) = fetch(&mut server, &mut client, "GET", "/healthz");
    println!("GET /healthz -> {status} {}", body.trim());

    let (status, streams) = fetch(&mut server, &mut client, "GET", "/admin/streams");
    println!("GET /admin/streams -> {status}");
    println!("  {streams}");

    let (status, exposition) = fetch(&mut server, &mut client, "GET", "/metrics");
    let series = exposition.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
    println!("GET /metrics -> {status} ({series} series, {} bytes)", exposition.len());
    for line in exposition.lines().filter(|l| {
        l.starts_with("pla_collector_segments_total")
            || l.starts_with("pla_collector_shed_segments_total")
            || l.starts_with("pla_store_segments_total")
            || l.starts_with("pla_ingest_samples_total")
            || l.starts_with("pla_query_lookups_total")
    }) {
        println!("  {line}");
    }

    let (status, body) =
        fetch(&mut server, &mut client, "POST", &format!("/admin/release/{victim}"));
    println!("POST /admin/release/{victim} -> {status} {body}");

    let snap = store.snapshot();
    println!(
        "store: {} streams, {} segments (stream {victim} quarantined away)",
        snap.streams.len(),
        snap.total_segments
    );
    assert_eq!(snap.streams.len(), (CONNS * STREAMS_PER_CONN) as usize - 1);
}
