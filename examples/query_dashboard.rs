//! Query dashboard: analytics over the *compressed* archive, with bounds.
//!
//! ```text
//! cargo run --release --example query_dashboard
//! ```
//!
//! The paper's pipeline stores recordings "for later offline analysis"
//! (§1). This example compresses a day of sensor data with the slide
//! filter, throws the original away, and answers dashboard queries from
//! the ~2% that remains — each answer carrying deterministic bounds
//! derived from the filters' ε guarantee. The original is kept here only
//! to demonstrate that every true answer falls inside its bounds.

use pla::core::filters::{run_filter, SlideFilter};
use pla::core::Polyline;
use pla::query::{CrossingKind, QueryEngine, SamplingGrid};
use pla::signal::sea_surface;

fn main() {
    let signal = sea_surface();
    let eps = signal.epsilons_from_range_percent(1.0);

    // Compress and build the query engine over the archive.
    let mut filter = SlideFilter::new(&eps).expect("valid ε");
    let segments = run_filter(&mut filter, &signal).expect("valid signal");
    let recordings: u64 = segments.iter().map(|s| s.new_recordings as u64).sum();
    println!(
        "archive: {} recordings for {} samples ({:.1}× compression, ε = ±{:.3} °C)\n",
        recordings,
        signal.len(),
        signal.len() as f64 / recordings as f64,
        eps[0],
    );
    let engine = QueryEngine::new(Polyline::new(segments), &eps).expect("valid engine");

    // The sampling schedule is known (10-minute grid).
    let grid = SamplingGrid { t0: 0.0, dt: 10.0, n: signal.len() };
    let times = grid.times();

    // Dashboard panel 1: daily statistics.
    let mean = engine.mean(&times, 0).expect("covered");
    let min = engine.min(&times, 0).expect("covered");
    let max = engine.max(&times, 0).expect("covered");
    println!(
        "mean temperature: {:.3} °C  (true value in [{:.3}, {:.3}])",
        mean.value, mean.lo, mean.hi
    );
    println!(
        "min  temperature: {:.3} °C  (true value in [{:.3}, {:.3}])",
        min.value, min.lo, min.hi
    );
    println!(
        "max  temperature: {:.3} °C  (true value in [{:.3}, {:.3}])",
        max.value, max.lo, max.hi
    );

    // Panel 2: how long was it warmer than 23 °C?
    let above = engine.count_above(&times, 0, 23.0).expect("covered");
    println!(
        "\nsamples above 23 °C: between {} and {} (of {})",
        above.definite,
        above.possible,
        times.len()
    );

    // Panel 3: threshold crossing events.
    let crossings = engine.crossings(&times, 0, 23.0).expect("covered");
    let certain = crossings.iter().filter(|c| c.kind == CrossingKind::Certain).count();
    println!("23 °C crossings: {certain} certain, {} possible", crossings.len() - certain);

    // Ground truth check (the dashboard itself never needs this).
    let truth_mean =
        (0..signal.len()).map(|j| signal.value(j, 0)).sum::<f64>() / signal.len() as f64;
    let truth_min = (0..signal.len()).map(|j| signal.value(j, 0)).fold(f64::INFINITY, f64::min);
    let truth_max = (0..signal.len()).map(|j| signal.value(j, 0)).fold(f64::NEG_INFINITY, f64::max);
    let truth_above = (0..signal.len()).filter(|&j| signal.value(j, 0) > 23.0).count();
    assert!(mean.contains(truth_mean));
    assert!(min.contains(truth_min));
    assert!(max.contains(truth_max));
    assert!(above.contains(truth_above));
    println!("\nall true answers verified inside their bounds ✓");
}
