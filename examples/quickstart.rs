//! Quickstart: compress a temperature trace with every filter and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the library's core loop: build a signal, pick a
//! precision width, stream it through a filter, inspect the compression
//! ratio, and verify the reconstruction honours the L∞ guarantee.

use pla::core::filters::{CacheFilter, LinearFilter, SlideFilter, StreamFilter, SwingFilter};
use pla::core::metrics;
use pla::core::{GapPolicy, Polyline};
use pla::signal::sea_surface;

fn main() {
    // 1. A signal: 1285 sea-surface temperature readings, 10 min apart
    //    (the proxy for the paper's Figure 6 trace).
    let signal = sea_surface();
    let (lo, hi) = signal.range(0).expect("non-empty signal");
    println!("signal: {} points, range {lo:.2}–{hi:.2} °C", signal.len());

    // 2. A precision width: the receiver tolerates ±1% of the range.
    let eps = signal.epsilons_from_range_percent(1.0);
    println!("precision: ±{:.4} °C\n", eps[0]);

    // 3. Stream through each filter and report.
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "filter", "segments", "recordings", "compression", "avg err (°C)"
    );
    let mut filters: Vec<Box<dyn StreamFilter>> = vec![
        Box::new(CacheFilter::new(&eps).expect("valid ε")),
        Box::new(LinearFilter::new(&eps).expect("valid ε")),
        Box::new(SwingFilter::new(&eps).expect("valid ε")),
        Box::new(SlideFilter::new(&eps).expect("valid ε")),
    ];
    for filter in filters.iter_mut() {
        let report = metrics::evaluate(filter.as_mut(), &signal).expect("valid signal");
        println!(
            "{:<8} {:>10} {:>12} {:>12.2} {:>12.4}",
            filter.name(),
            report.n_segments,
            report.n_recordings,
            report.compression_ratio,
            report.error.mean_abs_overall(),
        );
        // The headline guarantee (Theorems 3.1/4.1): no point strays more
        // than ε from the approximation.
        assert!(report.error.max_abs_overall() <= eps[0] * (1.0 + 1e-9));
    }

    // 4. Reconstruct from the slide filter's segments and query anywhere.
    let mut slide = SlideFilter::new(&eps).expect("valid ε");
    let segments = pla::core::filters::run_filter(&mut slide, &signal).expect("valid signal");
    let polyline = Polyline::new(segments);
    let t_mid = signal.times()[signal.len() / 2];
    let approx = polyline.eval(t_mid, 0, GapPolicy::Strict).expect("covered");
    let (_, actual) = signal.sample(signal.len() / 2);
    println!(
        "\nreconstruction at t={t_mid} min: {approx:.3} °C (actual {:.3}, ε {:.3})",
        actual[0], eps[0]
    );
}
