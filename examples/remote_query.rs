//! Remote query serving end-to-end over real sockets: an edge fleet
//! compresses its streams and ships them over TCP into the collector's
//! shared `SegmentStore`, then a *remote reader* on its own TCP
//! connection queries the store through `QueryServer`/`QueryClient` —
//! and every answer is verified bit-identical to running the local
//! `StoreQueryEngine` on the same snapshot.
//!
//! ```text
//! cargo run --release --example remote_query
//! ```
//!
//! Two listening sockets, both on ephemeral loopback ports: the
//! collector's (segment ingest, `Data`/`Ack`/`Credit` frames) and the
//! query server's (version-2 `Hello` handshake, then pipelined
//! `QueryReq`/`QueryResp` + `EpochsReq`/`EpochsResp`). The reader also
//! demonstrates the epoch-validated `SnapshotCache`: after one epochs
//! probe, re-asking the same queries is answered locally with zero
//! wire traffic.

use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use std::cell::RefCell;

use pla::core::filters::{run_filter, FilterKind};
use pla::ingest::SegmentStore;
use pla::net::listen::TcpAcceptor;
use pla::net::session::TcpRedial;
use pla::net::{collector, runtime, Collector, MuxSender, NetConfig, TcpLink};
use pla::query::{
    Cached, Query, QueryClient, QueryClientConfig, QueryServer, Response, StoreQueryEngine,
};
use pla::signal::{random_walk, WalkParams};
use pla::transport::wire::FixedCodec;

const SENSORS: u64 = 3;
const STREAMS_PER_SENSOR: u64 = 4;
const SAMPLES: usize = 1_500;
const EPSILON: f64 = 0.4;

/// Pumps the client against the wall clock until every id completes.
fn await_all(client: &mut QueryClient<TcpRedial>, ids: &[u64]) -> BTreeMap<u64, Response> {
    let mut done = BTreeMap::new();
    while done.len() < ids.len() {
        client.pump_at(Instant::now());
        for (id, outcome) in client.take_completed() {
            done.insert(id, outcome.expect("healthy server answers"));
        }
        std::thread::yield_now();
    }
    done
}

fn main() {
    let cfg = NetConfig::default();
    let (ingest_acceptor, query_acceptor) =
        match (TcpAcceptor::bind("127.0.0.1:0"), TcpAcceptor::bind("127.0.0.1:0")) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("cannot bind loopback ({e}); this example needs TCP networking");
                return;
            }
        };
    let ingest_addr = ingest_acceptor.local_addr().expect("bound address");
    let query_addr = query_acceptor.local_addr().expect("bound address");
    let store = Arc::new(SegmentStore::new());

    // --- edge fleet: compress, then ship over TCP -----------------------
    let mut expected = 0u64;
    let mut workers = Vec::new();
    for sensor in 0..SENSORS {
        let mut logs = Vec::new();
        for s in 0..STREAMS_PER_SENSOR {
            let id = sensor * STREAMS_PER_SENSOR + s;
            let signal = random_walk(WalkParams {
                n: SAMPLES,
                p_decrease: 0.5,
                max_delta: 0.8,
                seed: 0xD1A1 ^ id,
            });
            let mut filter = FilterKind::Swing.build(&[EPSILON]).expect("valid eps");
            let segments = run_filter(filter.as_mut(), &signal).expect("valid signal");
            expected += segments.len() as u64;
            logs.push((id, segments));
        }
        workers.push(std::thread::spawn(move || {
            let mut link = TcpLink::connect(ingest_addr).expect("dial collector");
            let mut tx = MuxSender::new(FixedCodec, 1, cfg);
            let mut cursors = vec![0usize; logs.len()];
            loop {
                let mut done = true;
                for (i, (id, segments)) in logs.iter().enumerate() {
                    while cursors[i] < segments.len() {
                        match tx.try_send_segment(*id, &segments[cursors[i]]) {
                            Ok(()) => cursors[i] += 1,
                            Err(pla::net::NetError::Backpressure) => break,
                            Err(e) => panic!("send failed: {e}"),
                        }
                    }
                    if cursors[i] < segments.len() {
                        done = false;
                    }
                }
                if done {
                    tx.finish_all();
                }
                pla::net::driver::pump_sender(&mut tx, &mut link).expect("uplink");
                if done && tx.is_idle() {
                    return;
                }
                std::thread::yield_now();
            }
        }));
    }

    // --- base station: collect everything, then serve queries -----------
    let collector =
        Rc::new(RefCell::new(Collector::new(FixedCodec, 1, cfg, ingest_acceptor, store.clone())));
    runtime::block_on({
        let collector = collector.clone();
        async move {
            collector::drive_collector(collector, |c| c.stats().segments >= expected)
                .await
                .expect("collector");
        }
    });
    for w in workers {
        w.join().expect("sensor thread");
    }
    let snap = store.snapshot();
    println!(
        "collected {} segments across {} streams; query server on {query_addr}",
        snap.total_segments,
        snap.streams.len()
    );

    // --- remote reader on its own thread, real TCP round trips ----------
    let reader_done = Arc::new(AtomicBool::new(false));
    let reader = {
        let done = reader_done.clone();
        std::thread::spawn(move || {
            let mut client =
                QueryClient::new(TcpRedial::new(query_addr), QueryClientConfig::default());
            let now = Instant::now();

            // Discover the streams, validate the cache's epoch view.
            let streams_id = client.submit(Query::Streams, now);
            let probe_id = client.probe_epochs(now);
            let first = await_all(&mut client, &[streams_id, probe_id]);
            let Response::Result(pla::query::QueryResult::Streams(streams)) = &first[&streams_id]
            else {
                panic!("Streams answers with a stream list");
            };

            // One mixed burst per discovered stream, all pipelined.
            let now = Instant::now();
            let queries: Vec<Query> = streams
                .iter()
                .flat_map(|&stream| {
                    [
                        Query::Span { stream },
                        Query::Point { stream, t: 10.5, dim: 0 },
                        Query::Range { stream, a: 0.0, b: 100.0, dim: 0 },
                        Query::CountAbove {
                            stream,
                            dim: 0,
                            threshold: 0.0,
                            eps: EPSILON,
                            times: (0..32).map(|i| i as f64).collect(),
                        },
                    ]
                })
                .collect();
            let ids: Vec<u64> = queries
                .iter()
                .map(|q| match client.submit_cached(q.clone(), now) {
                    Cached::Sent(id) => id,
                    Cached::Hit(_) => unreachable!("nothing cached yet"),
                })
                .collect();
            let answers = await_all(&mut client, &ids);

            // Same questions again: the epoch-validated cache answers
            // every one locally, no wire traffic.
            let hits = queries
                .iter()
                .filter(|q| matches!(client.submit_cached((*q).clone(), now), Cached::Hit(_)))
                .count();
            let stats = client.stats();
            done.store(true, Ordering::Release);
            let results: Vec<(Query, pla::query::QueryResult)> = queries
                .into_iter()
                .zip(ids)
                .map(|(q, id)| match &answers[&id] {
                    Response::Result(r) => (q, r.clone()),
                    other => panic!("query answers with a result, got {other:?}"),
                })
                .collect();
            (results, hits, stats)
        })
    };

    // Serve until the reader is done (production uses the async
    // `drive_query_server` task; the sync pump keeps the example flat).
    let mut server = QueryServer::new(query_acceptor, store.clone(), cfg);
    while !reader_done.load(Ordering::Acquire) {
        server.pump();
        std::thread::yield_now();
    }
    server.pump();
    let (results, cache_hits, client_stats) = reader.join().expect("reader thread");

    // --- the serving contract: remote ≡ local, bit for bit --------------
    let engine = StoreQueryEngine::new(store.snapshot());
    for (query, remote) in &results {
        let local = query.run(&engine);
        assert_eq!(
            remote.encode(),
            local.encode(),
            "{query:?}: remote answer must be bit-identical to the local engine"
        );
    }
    let stats = server.stats();
    println!(
        "remote reader: {} answers bit-identical to the local engine, {} cache hits on re-ask",
        results.len(),
        cache_hits
    );
    println!(
        "wire: {} requests, {} bytes in / {} bytes out, {} engine rebuilds, {} redials",
        stats.requests, stats.bytes_in, stats.bytes_out, stats.rebuilds, client_stats.dials
    );
}
