//! Sensor network scenario: correlated multi-sensor node with a bounded
//! receiver lag and a bandwidth budget.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```
//!
//! The paper's motivating deployment (§1): a sensor node samples several
//! correlated quantities and must minimize transmitted data — battery
//! life is dominated by radio time — while the base station needs every
//! reading within a known error bound and within a bounded number of
//! samples of lag. This example runs the full transmitter→receiver
//! pipeline with the slide filter, a compact wire codec, and
//! `m_max_lag = 25`, then verifies both guarantees.

use pla::core::filters::SlideFilter;
use pla::core::{GapPolicy, Polyline};
use pla::signal::{correlated_walk, WalkParams};
use pla::transport::wire::CompactCodec;
use pla::transport::{Receiver, Transmitter};

const DIMS: usize = 4; // temperature, humidity, pressure, light
const N: usize = 5_000;
const MAX_LAG: usize = 25;

fn main() {
    // Correlated environmental readings (ρ = 0.8: weather moves together).
    let signal = correlated_walk(
        DIMS,
        0.8,
        WalkParams { n: N, p_decrease: 0.5, max_delta: 0.4, seed: 0xBEE },
    );
    let eps = vec![0.5; DIMS];

    // Slide filter with the paper's m_max_lag bound; compact codec with
    // quanta far below ε so quantization stays inside the error budget.
    let filter = SlideFilter::builder(&eps).max_lag(MAX_LAG).build().expect("valid configuration");
    let quanta: Vec<f64> = eps.iter().map(|e| e / 64.0).collect();
    let mut tx = Transmitter::new(filter, CompactCodec::new(1.0 / 64.0, &quanta));
    let mut rx = Receiver::new(CompactCodec::new(1.0 / 64.0, &quanta), DIMS);

    let mut worst_lag = 0usize;
    for (t, x) in signal.iter() {
        tx.push(t, x).expect("valid sample");
        rx.consume(tx.take_bytes()).expect("lossless channel");
        worst_lag = worst_lag.max(tx.pending_points());
    }
    tx.finish().expect("flush");
    rx.consume(tx.take_bytes()).expect("lossless channel");

    let stats = tx.stats();
    let raw_bytes = (N * (DIMS + 1) * 8) as u64;
    println!("samples:        {N} × {DIMS} dims");
    println!("messages sent:  {}", stats.messages);
    println!("bytes sent:     {} (raw would be {raw_bytes})", stats.bytes);
    println!("wire reduction: {:.1}×", raw_bytes as f64 / stats.bytes as f64);
    println!("recordings:     {}", stats.recordings);
    println!("worst lag:      {worst_lag} samples (bound {MAX_LAG})");
    assert!(worst_lag <= MAX_LAG, "lag bound violated");

    // Base-station side: rebuild and verify the error bound, allowing for
    // the codec's quantization (≤ half a quantum per value).
    let polyline = Polyline::new(rx.into_segments());
    let slack = eps[0] / 64.0;
    let mut worst = 0.0f64;
    for (t, x) in signal.iter() {
        for (d, &actual) in x.iter().enumerate() {
            if let Some(v) = polyline.eval(t, d, GapPolicy::Hold) {
                worst = worst.max((v - actual).abs());
            }
        }
    }
    println!("worst reconstruction error: {worst:.4} (ε + quantization = {:.4})", eps[0] + slack);
    assert!(worst <= eps[0] + slack, "error bound violated");
}
