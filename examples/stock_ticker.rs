//! Stock-ticker scenario: error-bounded quote archiving.
//!
//! ```text
//! cargo run --release --example stock_ticker
//! ```
//!
//! The paper's introduction notes that "online stock quotes … are usually
//! lagging a few minutes behind the actual market data" — exactly the
//! tolerance the swing/slide filters trade for compression. This example
//! archives a volatile price series with every filter at tick-level,
//! cent-level and dime-level precision, showing how the compression ratio
//! scales with the tolerated error, and prints which filter a quote
//! archive should pick at each operating point.

use pla::core::filters::{CacheFilter, LinearFilter, SlideFilter, StreamFilter, SwingFilter};
use pla::core::metrics;
use pla::core::Signal;
use pla::signal::{random_walk, WalkParams};

fn main() {
    // A day of per-second prices: geometric-ish walk around $100 with
    // bursts. Built from the paper's random-walk model plus a re-scale.
    let base =
        random_walk(WalkParams { n: 6 * 60 * 60, p_decrease: 0.5, max_delta: 0.03, seed: 0x570C4 });
    let mut prices = Signal::new(1);
    for (t, x) in base.iter() {
        prices.push(t, &[100.0 + x[0]]).expect("walk output is monotone in time");
    }
    let (lo, hi) = prices.range(0).expect("non-empty");
    println!("price series: {} ticks, ${lo:.2}–${hi:.2}\n", prices.len());

    for (label, eps) in [("±1¢", 0.01), ("±10¢", 0.10), ("±$1", 1.00)] {
        println!("tolerance {label}:");
        println!(
            "  {:<8} {:>12} {:>14} {:>16}",
            "filter", "recordings", "compression", "avg err ($)"
        );
        let mut best: Option<(String, f64)> = None;
        let mut filters: Vec<Box<dyn StreamFilter>> = vec![
            Box::new(CacheFilter::new(&[eps]).expect("valid ε")),
            Box::new(LinearFilter::new(&[eps]).expect("valid ε")),
            Box::new(SwingFilter::new(&[eps]).expect("valid ε")),
            Box::new(SlideFilter::new(&[eps]).expect("valid ε")),
        ];
        for f in filters.iter_mut() {
            let report = metrics::evaluate(f.as_mut(), &prices).expect("valid signal");
            println!(
                "  {:<8} {:>12} {:>14.2} {:>16.5}",
                f.name(),
                report.n_recordings,
                report.compression_ratio,
                report.error.mean_abs_overall()
            );
            assert!(report.error.max_abs_overall() <= eps * (1.0 + 1e-9));
            if best.as_ref().is_none_or(|(_, cr)| report.compression_ratio > *cr) {
                best = Some((f.name().to_string(), report.compression_ratio));
            }
        }
        let (name, cr) = best.expect("at least one filter ran");
        println!("  → best: {name} at {cr:.1}× \n");
    }
}
