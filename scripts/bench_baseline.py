#!/usr/bin/env python3
"""Regenerate (or incrementally update) BENCH_BASELINE.json.

The vendored criterion harness (see vendor/README.md) prints one line per
benchmark to stderr:

    <group>/<id>            <ns_per_iter> ns/iter   [<rate> elem/s|B/s]

This script runs bench targets, parses those lines, and writes the
numbers plus machine metadata to BENCH_BASELINE.json at the repo root.
Later perf PRs diff their runs against this file to claim wins.

Usage:
    python3 scripts/bench_baseline.py [output.json] [--quick]
        Full recapture: run every bench target, rewrite the file.
        --quick sets PLA_BENCH_QUICK=1 (short windows); the flag is
        stamped into the capture metadata so bench_compare.py can warn
        when comparing across window lengths.
    python3 scripts/bench_baseline.py --merge --bench NAME [--bench NAME2]
        Run only the named bench target(s) and merge their cells into
        the existing file (machine metadata untouched) — how a PR that
        adds one bench checks in its baseline cells without re-timing
        the whole suite on a possibly different machine.

Besides the numbers, the file records capture metadata: cpu count,
platform, rustc, the CPU's SIMD feature set (what `Kernel::detect`
sees), and whether quick mode was used. bench_compare.py refuses to
gate against a baseline whose machine metadata does not match the
current host.
"""

import json
import os
import re
import subprocess
import sys

LINE = re.compile(
    r"^(?P<name>\S.*?)\s+(?P<ns>[\d.]+) ns/iter(?:\s+(?P<rate>[\d.]+) (?P<unit>elem/s|B/s))?\s*$"
)

# The feature flags that change which kernel backend pla-core's
# `Kernel::detect` picks (plus fma/avx512f, which would matter to future
# backends). Anything else in /proc/cpuinfo is noise for our purposes.
SIMD_FEATURES = ("sse2", "avx", "avx2", "avx512f", "fma")


def cpu_count():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def cpu_features():
    """The host's SIMD-relevant feature flags, sorted (empty off-Linux)."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("flags"):
                    flags = set(line.split(":", 1)[1].split())
                    return sorted(name for name in SIMD_FEATURES if name in flags)
    except OSError:
        pass
    return []


def run_benches(repo, bench_names, quick):
    cmd = ["cargo", "bench"]
    for name in bench_names:
        cmd += ["--bench", name]
    env = dict(os.environ)
    if quick:
        env["PLA_BENCH_QUICK"] = "1"
    proc = subprocess.run(
        cmd,
        cwd=repo,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        check=True,
        env=env,
    )
    benchmarks = {}
    for line in proc.stderr.splitlines():
        m = LINE.match(line.strip())
        if not m or m.group("name").startswith("group "):
            continue
        entry = {"ns_per_iter": float(m.group("ns"))}
        if m.group("rate"):
            key = "elements_per_sec" if m.group("unit") == "elem/s" else "bytes_per_sec"
            entry[key] = float(m.group("rate"))
        benchmarks[m.group("name")] = entry
    if not benchmarks:
        sys.exit("no benchmark lines parsed from cargo bench output")
    return benchmarks


def main():
    args = sys.argv[1:]
    merge = False
    quick = False
    bench_names = []
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--merge":
            merge = True
        elif args[i] == "--quick":
            quick = True
        elif args[i] == "--bench":
            i += 1
            if i >= len(args):
                sys.exit("--bench needs a target name")
            bench_names.append(args[i])
        else:
            positional.append(args[i])
        i += 1
    out_path = positional[0] if positional else "BENCH_BASELINE.json"
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    full_out = os.path.join(repo, out_path)
    if merge and not os.path.exists(full_out):
        sys.exit(
            f"--merge: {out_path} does not exist; run a full capture first "
            "(bench results would have been discarded after the run)"
        )

    benchmarks = run_benches(repo, bench_names, quick)

    if merge:
        with open(full_out) as f:
            baseline = json.load(f)
        baseline["benchmarks"].update(benchmarks)
    else:
        toolchain = subprocess.run(
            ["rustc", "--version"], stdout=subprocess.PIPE, text=True, check=True
        ).stdout.strip()
        baseline = {
            "_comment": (
                "Wall-clock numbers from the vendored criterion stand-in "
                "(vendor/README.md): means, no statistics. Compare against runs "
                "on the same machine only; regenerate with "
                "scripts/bench_baseline.py."
            ),
            "machine": {
                "cpus": cpu_count(),
                "cpu_features": cpu_features(),
                "platform": sys.platform,
                "rustc": toolchain,
            },
            "capture": {"quick": quick},
            "benchmarks": benchmarks,
        }
    with open(full_out, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    verb = "merged into" if merge else "wrote"
    print(f"{verb} {out_path}: {len(benchmarks)} benchmarks")


if __name__ == "__main__":
    main()
