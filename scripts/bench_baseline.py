#!/usr/bin/env python3
"""Regenerate (or incrementally update) BENCH_BASELINE.json.

The vendored criterion harness (see vendor/README.md) prints one line per
benchmark to stderr:

    <group>/<id>            <ns_per_iter> ns/iter   [<rate> elem/s|B/s]

This script runs bench targets, parses those lines, and writes the
numbers plus machine metadata to BENCH_BASELINE.json at the repo root.
Later perf PRs diff their runs against this file to claim wins.

Usage:
    python3 scripts/bench_baseline.py [output.json]
        Full recapture: run every bench target, rewrite the file.
    python3 scripts/bench_baseline.py --merge --bench NAME [--bench NAME2]
        Run only the named bench target(s) and merge their cells into
        the existing file (machine metadata untouched) — how a PR that
        adds one bench checks in its baseline cells without re-timing
        the whole suite on a possibly different machine.
"""

import json
import os
import re
import subprocess
import sys

LINE = re.compile(
    r"^(?P<name>\S.*?)\s+(?P<ns>[\d.]+) ns/iter(?:\s+(?P<rate>[\d.]+) (?P<unit>elem/s|B/s))?\s*$"
)


def cpu_count():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def run_benches(repo, bench_names):
    cmd = ["cargo", "bench"]
    for name in bench_names:
        cmd += ["--bench", name]
    proc = subprocess.run(
        cmd, cwd=repo, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, check=True
    )
    benchmarks = {}
    for line in proc.stderr.splitlines():
        m = LINE.match(line.strip())
        if not m or m.group("name").startswith("group "):
            continue
        entry = {"ns_per_iter": float(m.group("ns"))}
        if m.group("rate"):
            key = "elements_per_sec" if m.group("unit") == "elem/s" else "bytes_per_sec"
            entry[key] = float(m.group("rate"))
        benchmarks[m.group("name")] = entry
    if not benchmarks:
        sys.exit("no benchmark lines parsed from cargo bench output")
    return benchmarks


def main():
    args = sys.argv[1:]
    merge = False
    bench_names = []
    positional = []
    i = 0
    while i < len(args):
        if args[i] == "--merge":
            merge = True
        elif args[i] == "--bench":
            i += 1
            if i >= len(args):
                sys.exit("--bench needs a target name")
            bench_names.append(args[i])
        else:
            positional.append(args[i])
        i += 1
    out_path = positional[0] if positional else "BENCH_BASELINE.json"
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    full_out = os.path.join(repo, out_path)
    if merge and not os.path.exists(full_out):
        sys.exit(
            f"--merge: {out_path} does not exist; run a full capture first "
            "(bench results would have been discarded after the run)"
        )

    benchmarks = run_benches(repo, bench_names)

    if merge:
        with open(full_out) as f:
            baseline = json.load(f)
        baseline["benchmarks"].update(benchmarks)
    else:
        toolchain = subprocess.run(
            ["rustc", "--version"], stdout=subprocess.PIPE, text=True, check=True
        ).stdout.strip()
        baseline = {
            "_comment": (
                "Wall-clock numbers from the vendored criterion stand-in "
                "(vendor/README.md): means, no statistics. Compare against runs "
                "on the same machine only; regenerate with "
                "scripts/bench_baseline.py."
            ),
            "machine": {
                "cpus": cpu_count(),
                "platform": sys.platform,
                "rustc": toolchain,
            },
            "benchmarks": benchmarks,
        }
    with open(full_out, "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    verb = "merged into" if merge else "wrote"
    print(f"{verb} {out_path}: {len(benchmarks)} benchmarks")


if __name__ == "__main__":
    main()
