#!/usr/bin/env python3
"""Regenerate BENCH_BASELINE.json from a full `cargo bench` run.

The vendored criterion harness (see vendor/README.md) prints one line per
benchmark to stderr:

    <group>/<id>            <ns_per_iter> ns/iter   [<rate> elem/s|B/s]

This script runs every bench target, parses those lines, and writes the
numbers plus machine metadata to BENCH_BASELINE.json at the repo root.
Later perf PRs diff their runs against this file to claim wins.

Usage:  python3 scripts/bench_baseline.py [output.json]
"""

import json
import os
import re
import subprocess
import sys

LINE = re.compile(
    r"^(?P<name>\S.*?)\s+(?P<ns>[\d.]+) ns/iter(?:\s+(?P<rate>[\d.]+) (?P<unit>elem/s|B/s))?\s*$"
)


def cpu_count():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_BASELINE.json"
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    proc = subprocess.run(
        ["cargo", "bench"],
        cwd=repo,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        check=True,
    )
    benchmarks = {}
    for line in proc.stderr.splitlines():
        m = LINE.match(line.strip())
        if not m or m.group("name").startswith("group "):
            continue
        entry = {"ns_per_iter": float(m.group("ns"))}
        if m.group("rate"):
            key = "elements_per_sec" if m.group("unit") == "elem/s" else "bytes_per_sec"
            entry[key] = float(m.group("rate"))
        benchmarks[m.group("name")] = entry
    if not benchmarks:
        sys.exit("no benchmark lines parsed from cargo bench output")

    toolchain = subprocess.run(
        ["rustc", "--version"], stdout=subprocess.PIPE, text=True, check=True
    ).stdout.strip()
    baseline = {
        "_comment": (
            "Wall-clock numbers from the vendored criterion stand-in "
            "(vendor/README.md): means, no statistics. Compare against runs "
            "on the same machine only; regenerate with "
            "scripts/bench_baseline.py."
        ),
        "machine": {
            "cpus": cpu_count(),
            "platform": sys.platform,
            "rustc": toolchain,
        },
        "benchmarks": benchmarks,
    }
    with open(os.path.join(repo, out_path), "w") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}: {len(benchmarks)} benchmarks")


if __name__ == "__main__":
    main()
