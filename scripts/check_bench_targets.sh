#!/usr/bin/env sh
# Fails if crates/bench/benches/*.rs and the [[bench]] entries in
# crates/bench/Cargo.toml have drifted apart. Cargo silently skips a
# bench file with no [[bench]] entry (harness = false requires one), so
# a forgotten entry means a bench that never runs — this check makes CI
# catch it instead.
set -eu

cd "$(dirname "$0")/.."
manifest=crates/bench/Cargo.toml
status=0

declared=$(awk '
    /^\[\[bench\]\]/ { expect = 1; next }
    expect && /^name *= */ {
        gsub(/^name *= *"|" *$/, ""); print; expect = 0
    }
' "$manifest" | sort)

on_disk=$(ls crates/bench/benches/*.rs | xargs -n1 basename | sed 's/\.rs$//' | sort)

for name in $on_disk; do
    if ! printf '%s\n' "$declared" | grep -qx "$name"; then
        echo "MISSING: crates/bench/benches/$name.rs has no [[bench]] entry in $manifest" >&2
        status=1
    fi
done

for name in $declared; do
    if ! printf '%s\n' "$on_disk" | grep -qx "$name"; then
        echo "STALE: [[bench]] entry '$name' in $manifest has no crates/bench/benches/$name.rs" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    count=$(printf '%s\n' "$on_disk" | wc -l | tr -d ' ')
    echo "bench targets in sync ($count declared and present)"
fi
exit $status
