#!/usr/bin/env sh
# Fails if any crate's benches/*.rs and the [[bench]] entries in its
# Cargo.toml have drifted apart. Cargo silently skips a bench file with
# no [[bench]] entry (harness = false requires one), so a forgotten
# entry means a bench that never runs — this check makes CI catch it
# instead.
set -eu

cd "$(dirname "$0")/.."
status=0
total=0

for crate in crates/bench crates/ops; do
    manifest="$crate/Cargo.toml"

    declared=$(awk '
        /^\[\[bench\]\]/ { expect = 1; next }
        expect && /^name *= */ {
            gsub(/^name *= *"|" *$/, ""); print; expect = 0
        }
    ' "$manifest" | sort)

    on_disk=$(ls "$crate"/benches/*.rs | xargs -n1 basename | sed 's/\.rs$//' | sort)

    for name in $on_disk; do
        if ! printf '%s\n' "$declared" | grep -qx "$name"; then
            echo "MISSING: $crate/benches/$name.rs has no [[bench]] entry in $manifest" >&2
            status=1
        fi
    done

    for name in $declared; do
        if ! printf '%s\n' "$on_disk" | grep -qx "$name"; then
            echo "STALE: [[bench]] entry '$name' in $manifest has no $crate/benches/$name.rs" >&2
            status=1
        fi
    done

    count=$(printf '%s\n' "$on_disk" | wc -l | tr -d ' ')
    total=$((total + count))
done

if [ "$status" -eq 0 ]; then
    echo "bench targets in sync ($total declared and present across crates)"
fi
exit $status
