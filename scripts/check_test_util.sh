#!/usr/bin/env sh
# Fails if pla-net's `test-util` feature no longer compiles standalone.
# The fault-injection harness (testutil::{FaultLink, FaultPlan,
# FaultRedial}) is public API for downstream crates' chaos tests, but
# inside this workspace it is only ever exercised through dev-deps —
# so a testutil.rs that accidentally leans on a dev-only item would
# pass `cargo test` and still be broken for every external consumer.
# This check builds the feature exactly as a consumer would see it.
set -eu

cd "$(dirname "$0")/.."

cargo check -q -p pla-net --features test-util
echo "pla-net --features test-util compiles standalone"
