//! # pla — online piece-wise linear approximation with precision guarantees
//!
//! Umbrella crate re-exporting the whole workspace: a faithful, tested
//! implementation of the swing and slide filters of
//!
//! > H. Elmeleegy, A. K. Elmagarmid, E. Cecchet, W. G. Aref, W. Zwaenepoel.
//! > *Online Piece-wise Linear Approximation of Numerical Streams with
//! > Precision Guarantees.* VLDB 2009.
//!
//! together with the cache and linear baseline filters the paper compares
//! against, workload generators, a transmitter/receiver transport layer,
//! and the experiment harness that regenerates every figure of the paper's
//! evaluation section.
//!
//! ## Quick start
//!
//! ```
//! use pla::core::filters::{SlideFilter, StreamFilter};
//! use pla::core::Segment;
//!
//! // Compress a 1-D stream under an L∞ error bound of 0.5.
//! let mut filter = SlideFilter::builder(&[0.5]).build().unwrap();
//! let mut segments: Vec<Segment> = Vec::new();
//! for (j, x) in [10.0, 10.4, 10.9, 11.2, 11.8, 25.0, 25.1].iter().enumerate() {
//!     filter.push(j as f64, &[*x], &mut segments).unwrap();
//! }
//! filter.finish(&mut segments).unwrap();
//!
//! // The jump to 25.0 forces a second segment; every input point is
//! // guaranteed to be within 0.5 of the emitted polyline.
//! assert_eq!(segments.len(), 2);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/eval` for the
//! paper-reproduction harness.

pub use pla_core as core;
pub use pla_eval as eval;
pub use pla_geom as geom;
pub use pla_ingest as ingest;
pub use pla_net as net;
pub use pla_ops as ops;
pub use pla_query as query;
pub use pla_signal as signal;
pub use pla_swab as swab;
pub use pla_transport as transport;
