//! End-to-end integration: generator → filter → wire → receiver →
//! reconstruction → verification, across all workspace crates.

use pla::core::filters::{CacheFilter, LinearFilter, SlideFilter, StreamFilter, SwingFilter};
use pla::core::{GapPolicy, Polyline};
use pla::signal::{correlated_walk, multi_walk, random_walk, sea_surface, WalkParams};
use pla::transport::wire::{CompactCodec, FixedCodec};
use pla::transport::{simulate_lag, Receiver, Transmitter};

fn filters(eps: &[f64]) -> Vec<Box<dyn StreamFilter>> {
    vec![
        Box::new(CacheFilter::new(eps).unwrap()),
        Box::new(LinearFilter::new(eps).unwrap()),
        Box::new(SwingFilter::new(eps).unwrap()),
        Box::new(SlideFilter::new(eps).unwrap()),
    ]
}

/// Pipe a signal through transmitter + fixed codec + receiver and verify
/// the reconstruction against the original within ε.
fn verify_pipeline(
    filter: Box<dyn StreamFilter>,
    signal: &pla::core::Signal,
    eps: &[f64],
    slack: f64,
) {
    struct BoxedFilter(Box<dyn StreamFilter>);
    impl StreamFilter for BoxedFilter {
        fn dims(&self) -> usize {
            self.0.dims()
        }
        fn epsilons(&self) -> &[f64] {
            self.0.epsilons()
        }
        fn push(
            &mut self,
            t: f64,
            x: &[f64],
            sink: &mut dyn pla::core::SegmentSink,
        ) -> Result<(), pla::core::FilterError> {
            self.0.push(t, x, sink)
        }
        fn finish(
            &mut self,
            sink: &mut dyn pla::core::SegmentSink,
        ) -> Result<(), pla::core::FilterError> {
            self.0.finish(sink)
        }
        fn pending_points(&self) -> usize {
            self.0.pending_points()
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }

    let name = filter.name();
    let mut tx = Transmitter::new(BoxedFilter(filter), FixedCodec);
    let mut rx = Receiver::new(FixedCodec, signal.dims());
    for (t, x) in signal.iter() {
        tx.push(t, x).unwrap();
        rx.consume(tx.take_bytes()).unwrap();
    }
    tx.finish().unwrap();
    rx.consume(tx.take_bytes()).unwrap();
    let polyline = Polyline::new(rx.into_segments());
    for (t, x) in signal.iter() {
        for d in 0..signal.dims() {
            let v = polyline
                .eval(t, d, GapPolicy::Hold)
                .unwrap_or_else(|| panic!("{name}: t={t} uncovered"));
            assert!(
                (v - x[d]).abs() <= eps[d] * (1.0 + 1e-6) + slack,
                "{name}: dim {d} error {} > ε {} at t={t}",
                (v - x[d]).abs(),
                eps[d]
            );
        }
    }
}

#[test]
fn full_pipeline_sea_surface_all_filters() {
    let signal = sea_surface();
    let eps = signal.epsilons_from_range_percent(1.0);
    for f in filters(&eps) {
        verify_pipeline(f, &signal, &eps, 0.0);
    }
}

#[test]
fn full_pipeline_random_walk_all_filters() {
    let signal = random_walk(WalkParams { n: 3000, ..Default::default() });
    for f in filters(&[0.7]) {
        verify_pipeline(f, &signal, &[0.7], 0.0);
    }
}

#[test]
fn full_pipeline_multidim() {
    let signal = multi_walk(3, WalkParams { n: 2000, seed: 11, ..Default::default() });
    let eps = [0.5, 1.0, 2.0];
    for f in filters(&eps) {
        verify_pipeline(f, &signal, &eps, 0.0);
    }
}

#[test]
fn compact_codec_pipeline_respects_error_budget() {
    // Quantization adds at most half a quantum per value; keep quanta at
    // ε/32 and verify the combined bound.
    let signal = correlated_walk(2, 0.6, WalkParams { n: 2500, seed: 12, ..Default::default() });
    let eps = [0.8, 0.8];
    let quanta: Vec<f64> = eps.iter().map(|e| e / 32.0).collect();
    let filter = SlideFilter::new(&eps).unwrap();
    let mut tx = Transmitter::new(filter, CompactCodec::new(1.0 / 32.0, &quanta));
    let mut rx = Receiver::new(CompactCodec::new(1.0 / 32.0, &quanta), 2);
    for (t, x) in signal.iter() {
        tx.push(t, x).unwrap();
        rx.consume(tx.take_bytes()).unwrap();
    }
    tx.finish().unwrap();
    rx.consume(tx.take_bytes()).unwrap();
    let polyline = Polyline::new(rx.into_segments());
    for (t, x) in signal.iter() {
        for d in 0..2 {
            let v = polyline.eval(t, d, GapPolicy::Hold).expect("covered");
            assert!(
                (v - x[d]).abs() <= eps[d] + quanta[d],
                "error {} over combined budget at t={t}",
                (v - x[d]).abs()
            );
        }
    }
    // And the wire really is smaller than raw.
    let raw = (signal.len() * 3 * 8) as u64;
    assert!(tx.stats().bytes < raw / 4, "bytes {} vs raw {raw}", tx.stats().bytes);
}

#[test]
fn lag_bound_holds_across_the_whole_stack() {
    let signal = sea_surface();
    let eps = signal.epsilons_from_range_percent(3.16);
    for m in [4usize, 16, 64] {
        let report = simulate_lag(
            SwingFilter::builder(&eps).max_lag(m).build().unwrap(),
            FixedCodec,
            FixedCodec,
            &signal,
        )
        .unwrap();
        assert!(report.max_lag <= m, "swing: lag {} > {m}", report.max_lag);
        let report = simulate_lag(
            SlideFilter::builder(&eps).max_lag(m).build().unwrap(),
            FixedCodec,
            FixedCodec,
            &signal,
        )
        .unwrap();
        assert!(report.max_lag <= m, "slide: lag {} > {m}", report.max_lag);
    }
}

#[test]
fn csv_round_trip_preserves_filter_output() {
    // Persist a signal as CSV, load it back, and check both copies
    // compress identically (byte-level determinism of the whole stack).
    let signal = random_walk(WalkParams { n: 800, seed: 13, ..Default::default() });
    let mut buf = Vec::new();
    pla::signal::csv::write_signal(&signal, &mut buf).unwrap();
    let reloaded = pla::signal::csv::read_signal(&buf[..]).unwrap();
    let mut f1 = SlideFilter::new(&[0.5]).unwrap();
    let mut f2 = SlideFilter::new(&[0.5]).unwrap();
    let a = pla::core::filters::run_filter(&mut f1, &signal).unwrap();
    let b = pla::core::filters::run_filter(&mut f2, &reloaded).unwrap();
    assert_eq!(a, b);
}
