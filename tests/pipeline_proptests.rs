//! Cross-crate property tests: the ε guarantee must survive the entire
//! transmitter → wire → receiver pipeline for arbitrary streams.

use proptest::prelude::*;

use pla::core::filters::{SlideFilter, StreamFilter, SwingFilter};
use pla::core::{GapPolicy, Polyline, Signal};
use pla::transport::wire::{Codec, CompactCodec, FixedCodec};
use pla::transport::{Receiver, Transmitter};

fn arbitrary_signal() -> impl Strategy<Value = Signal> {
    (1usize..=3, 2usize..150, any::<u64>()).prop_map(|(d, n, seed)| {
        let mut s = Signal::new(d);
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut vals = vec![0.0f64; d];
        let mut t = 0.0;
        for _ in 0..n {
            t += 0.25 + rnd().abs() * 2.0;
            for v in vals.iter_mut() {
                *v += rnd() * 3.0;
            }
            s.push(t, &vals).expect("valid");
        }
        s
    })
}

fn pipe<C: Codec>(
    filter: Box<dyn StreamFilter>,
    codec_tx: C,
    codec_rx: C,
    signal: &Signal,
) -> Vec<pla::core::Segment> {
    struct Wrap(Box<dyn StreamFilter>);
    impl StreamFilter for Wrap {
        fn dims(&self) -> usize {
            self.0.dims()
        }
        fn epsilons(&self) -> &[f64] {
            self.0.epsilons()
        }
        fn push(
            &mut self,
            t: f64,
            x: &[f64],
            sink: &mut dyn pla::core::SegmentSink,
        ) -> Result<(), pla::core::FilterError> {
            self.0.push(t, x, sink)
        }
        fn finish(
            &mut self,
            sink: &mut dyn pla::core::SegmentSink,
        ) -> Result<(), pla::core::FilterError> {
            self.0.finish(sink)
        }
        fn pending_points(&self) -> usize {
            self.0.pending_points()
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }
    let _ = filter.name();
    let mut tx = Transmitter::new(Wrap(filter), codec_tx);
    let mut rx = Receiver::new(codec_rx, signal.dims());
    for (t, x) in signal.iter() {
        tx.push(t, x).unwrap();
        rx.consume(tx.take_bytes()).unwrap();
    }
    tx.finish().unwrap();
    rx.consume(tx.take_bytes()).unwrap();
    rx.into_segments()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed codec: lossless pipeline, full ε guarantee.
    #[test]
    fn fixed_codec_pipeline_keeps_guarantee(signal in arbitrary_signal(), eps in 0.1f64..5.0) {
        let eps_vec = vec![eps; signal.dims()];
        let filters: Vec<Box<dyn StreamFilter>> = vec![
            Box::new(SwingFilter::new(&eps_vec).unwrap()),
            Box::new(SlideFilter::new(&eps_vec).unwrap()),
        ];
        for f in filters {
            let segs = pipe(f, FixedCodec, FixedCodec, &signal);
            let poly = Polyline::new(segs);
            for (t, x) in signal.iter() {
                for (d, &actual) in x.iter().enumerate() {
                    let v = poly.eval(t, d, GapPolicy::Hold);
                    prop_assert!(v.is_some(), "t={t} uncovered");
                    let err = (v.unwrap() - actual).abs();
                    prop_assert!(
                        err <= eps * (1.0 + 1e-6),
                        "err {err} > ε {eps} at t={t} dim {d}"
                    );
                }
            }
        }
    }

    /// Compact codec: guarantee degrades by at most the quantization
    /// budget. Time quantization can nudge a disconnected segment's
    /// boundary past a sample, so gap samples are evaluated by
    /// interpolating between the surrounding endpoints (both of which are
    /// within ε + quantum of the true boundary values).
    #[test]
    fn compact_codec_pipeline_keeps_budget(signal in arbitrary_signal(), eps in 0.2f64..5.0) {
        let d = signal.dims();
        let eps_vec = vec![eps; d];
        let quanta = vec![eps / 32.0; d];
        // Time quantum ≪ the minimum sample spacing (0.25).
        let t_quantum = 1.0 / 1024.0;
        let filter: Box<dyn StreamFilter> = Box::new(SlideFilter::new(&eps_vec).unwrap());
        let segs = pipe(
            filter,
            CompactCodec::new(t_quantum, &quanta),
            CompactCodec::new(t_quantum, &quanta),
            &signal,
        );
        let poly = Polyline::new(segs);
        // Max per-sample value change is 3.0 over ≥ 0.25 time units: a
        // half-quantum endpoint shift perturbs interpolation by at most
        // slope · t_quantum ≤ 12 · t_quantum.
        let budget = eps + eps / 32.0 + 12.0 * t_quantum;
        for (t, x) in signal.iter() {
            for (dim, &actual) in x.iter().enumerate() {
                let v = poly
                    .eval(t, dim, GapPolicy::Interpolate)
                    .or_else(|| poly.eval(t, dim, GapPolicy::Hold));
                if let Some(v) = v {
                    let err = (v - actual).abs();
                    prop_assert!(err <= budget, "err {err} > budget {budget}");
                }
            }
        }
    }

    /// Wire determinism: same filter, same signal, same bytes.
    #[test]
    fn wire_stream_is_deterministic(signal in arbitrary_signal(), eps in 0.1f64..5.0) {
        let eps_vec = vec![eps; signal.dims()];
        let run = || {
            let f = SlideFilter::new(&eps_vec).unwrap();
            let mut tx = Transmitter::new(f, FixedCodec);
            let mut all = Vec::new();
            for (t, x) in signal.iter() {
                tx.push(t, x).unwrap();
                all.extend_from_slice(&tx.take_bytes());
            }
            tx.finish().unwrap();
            all.extend_from_slice(&tx.take_bytes());
            all
        };
        prop_assert_eq!(run(), run());
    }
}
