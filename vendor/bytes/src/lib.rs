//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset `pla-transport` uses: [`BytesMut`] as a growable
//! write buffer, [`Bytes`] as a cheaply cloneable read view, and the
//! [`Buf`]/[`BufMut`] cursor traits. Semantics match the real crate for
//! this subset (`split`/`freeze`, `slice`, little-endian get/put); the
//! implementation is a plain `Vec<u8>`/`Arc<[u8]>` rather than the real
//! crate's refcounted vtable machinery. Swap for the real `bytes` in
//! `[workspace.dependencies]` once a registry is reachable.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte source, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write cursor into a growable byte sink, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, n: f64) {
        self.put_u64_le(n.to_bits());
    }
}

/// Growable, uniquely owned byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    /// Splits off the entire contents, leaving `self` empty — the common
    /// `buf.split().freeze()` idiom for flushing a write buffer.
    pub fn split(&mut self) -> BytesMut {
        BytesMut { vec: std::mem::take(&mut self.vec) }
    }

    /// Converts into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(vec: Vec<u8>) -> Self {
        BytesMut { vec }
    }
}

/// Immutable, cheaply cloneable view of a byte sequence with a read
/// cursor, mirroring `bytes::Bytes`.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn from_vec(vec: Vec<u8>) -> Self {
        let end = vec.len();
        Bytes { data: vec.into(), start: 0, end }
    }

    /// Wraps a static byte slice (copied; the real crate borrows).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::from_vec(src.to_vec())
    }

    /// Bytes left to consume.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view has been fully consumed.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of the unconsumed bytes; shares the same allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::from_vec(Vec::new())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(vec: Vec<u8>) -> Self {
        Bytes::from_vec(vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_f64_le(-1.25);
        buf.put_u64_le(u64::MAX - 3);
        assert_eq!(buf.len(), 17);

        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 17);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_f64_le(), -1.25);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 3);
        assert!(bytes.is_empty());
    }

    #[test]
    fn split_empties_source() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"abc");
        let taken = buf.split();
        assert!(buf.is_empty());
        assert_eq!(&taken[..], b"abc");
        assert_eq!(&taken.freeze()[..], b"abc");
    }

    #[test]
    fn slice_shares_and_bounds() {
        let bytes = Bytes::from_static(b"hello world");
        let hello = bytes.slice(0..5);
        assert_eq!(&hello[..], b"hello");
        let mut tail = bytes.slice(6..);
        assert_eq!(tail.remaining(), 5);
        assert_eq!(tail.get_u8(), b'w');
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut bytes = Bytes::from_static(b"ab");
        bytes.advance(3);
    }
}
