//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its benches use: `Criterion::benchmark_group`,
//! group configuration (`warm_up_time` / `measurement_time` /
//! `sample_size` / `throughput`), `bench_function` / `bench_with_input`,
//! `Bencher::iter`, [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a deliberately simple wall-clock loop: one warm-up
//! pass, then `sample_size` samples of a batch sized to fit the
//! measurement window, reporting mean ns/iter (and derived element
//! throughput). No statistics, no HTML reports, no regression detection —
//! enough to compare hot paths locally and to keep `cargo bench`
//! compiling and running. Swap for the real `criterion` in
//! `[workspace.dependencies]` once a registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations, timing the
    /// whole batch. The routine's output is returned into a sink the
    /// optimizer cannot see through.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct GroupConfig {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: GroupConfig,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.config.warm_up = dur;
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.config.measurement = dur;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.config.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, &self.config, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, &self.config, |b| f(b, input));
        self
    }

    /// Ends the group (report separator).
    pub fn finish(self) {
        let _ = self.criterion;
        eprintln!();
    }
}

/// Quick mode (`PLA_BENCH_QUICK=1`): clamp warm-up/measurement windows
/// and sample counts so a full `cargo bench` sweep finishes in seconds.
/// Used by `scripts/bench_compare.py --quick` for CI regression gating;
/// numbers are noisier than a default run and must only be compared
/// against other quick runs at matching thresholds.
fn quick_mode() -> bool {
    std::env::var_os("PLA_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

fn run_one(label: &str, config: &GroupConfig, mut routine: impl FnMut(&mut Bencher)) {
    let mut config = config.clone();
    if quick_mode() {
        config.warm_up = config.warm_up.min(Duration::from_millis(50));
        config.measurement = config.measurement.min(Duration::from_millis(200));
        config.sample_size = config.sample_size.min(3);
    }
    let config = &config;
    // Warm-up / calibration pass: single iterations until the warm-up
    // window elapses, to estimate the cost of one iteration.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warm_start = Instant::now();
    let mut per_iter;
    loop {
        routine(&mut bencher);
        per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        if warm_start.elapsed() >= config.warm_up {
            break;
        }
    }

    // Size each sample's batch so all samples fit the measurement window.
    let budget = config.measurement.as_nanos() / config.sample_size as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, u64::MAX as u128) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..config.sample_size {
        bencher.iters = iters;
        routine(&mut bencher);
        total += bencher.elapsed;
        total_iters += bencher.iters;
    }

    let ns_per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
    match config.throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            eprintln!("{label:60} {ns_per_iter:14.1} ns/iter {rate:14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            eprintln!("{label:60} {ns_per_iter:14.1} ns/iter {rate:14.0} B/s");
        }
        None => eprintln!("{label:60} {ns_per_iter:14.1} ns/iter"),
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { criterion: self, name, config: GroupConfig::default() }
    }

    /// Runs a single ungrouped benchmark with default configuration.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, &GroupConfig::default(), |b| f(b));
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favor of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
