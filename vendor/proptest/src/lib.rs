//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API subset its property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`prop_oneof!`], the `prop_assert*` /
//! [`prop_assume!`] macros, and [`test_runner::Config`] (aliased
//! `ProptestConfig` in the prelude).
//!
//! Differences from the real crate: cases are drawn from a seed derived
//! deterministically from the test name (no `PROPTEST_*` env vars, no
//! persisted failure regressions), and failing cases are **not shrunk** —
//! a failure panics with the assertion message and the test's RNG is
//! deterministic, so failures still reproduce exactly. Swap for the real
//! `proptest` in `[workspace.dependencies]` once a registry is reachable.

pub mod test_runner {
    //! Test configuration, case results, and the deterministic RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-`proptest!` configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// A `prop_assume!` precondition did not hold; the case is
        /// discarded and does not count toward `cases`.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection carrying `msg`.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test RNG (seeded from the test's identity).
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG whose stream is a pure function of `(file, test_name)`.
        pub fn for_test(file: &str, test_name: &str) -> Self {
            // FNV-1a over the identity gives a stable, spread-out seed.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in file.bytes().chain([0u8]).chain(test_name.bytes()) {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::rc::Rc;

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    ///
    /// Unlike the real proptest there is no value tree / shrinking;
    /// `new_value` draws one concrete value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, map: f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, map: f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.map)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        map: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.map)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// Type-erased strategy, cheaply cloneable.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Strategies for collections (only `Vec` is needed here).

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for types with a canonical strategy.

    use std::marker::PhantomData;

    use rand::{Rng, Standard};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing from a type's full standard distribution.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyValue<T>(PhantomData<T>);

    impl<T: Standard> Strategy for AnyValue<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// Types with a canonical [`Strategy`], mirroring
    /// `proptest::arbitrary::Arbitrary`.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for this type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyValue<$t>;

                fn arbitrary() -> AnyValue<$t> {
                    AnyValue(PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Discards the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); ) => {};
    (@impl ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut proptest_rng =
                $crate::test_runner::TestRng::for_test(file!(), stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases as u64 * 20 + 1000,
                    "proptest '{}': too many rejected cases",
                    stringify!($name)
                );
                $(let $pat = $crate::strategy::Strategy::new_value(
                    &($strategy),
                    &mut proptest_rng,
                );)+
                let case = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => panic!(
                        "proptest '{}' failed after {} cases: {}",
                        stringify!($name),
                        accepted,
                        message
                    ),
                }
            }
        }
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module-style access (`prop::collection::vec`), mirroring
    /// `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u64) -> crate::test_runner::TestCaseResult {
        prop_assert!(x / 2 <= x, "halving cannot grow an unsigned value");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect bounds; helper `?` propagation works.
        #[test]
        fn ranges_and_helpers(x in 1usize..10, f in -2.0f64..2.0, s in any::<u64>()) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            helper(s)?;
        }

        /// Tuple patterns, flat_map, collections, and oneof compose.
        #[test]
        fn combinators_compose((n, v) in (1usize..=4).prop_flat_map(|n| {
            prop::collection::vec(0i64..100, n..=n).prop_map(move |v| (n, v))
        }), choice in prop_oneof![Just(0u8), Just(1u8)]) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(choice <= 1);
        }

        /// Assumptions reject without failing.
        #[test]
        fn assumptions_reject(x in 0u8..20) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
