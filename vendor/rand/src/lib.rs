//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`Rng`] (`gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality and deterministic, but **not** stream-
//! compatible with the real `rand::rngs::StdRng`; seeds produce different
//! (equally valid) sequences. Swap this crate for the real `rand` in
//! `[workspace.dependencies]` once a registry is reachable.

/// A source of random 64-bit words; everything else derives from this.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling conveniences layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Deterministic construction from a `u64` seed, mirroring
/// `rand::SeedableRng` (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator; the workspace's deterministic `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with SplitMix64, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k: usize = rng.gen_range(1..6);
            assert!((1..6).contains(&k));
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f: f64 = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
